(* Rules over the raw JSON documents of a campaign directory: the
   manifest, the per-shard checkpoints and the merged result.

   Everything here is audited at the document level, independently of
   [Ftes_campaign]'s decoders: fingerprints are recomputed from the
   parsed manifest (the JSON printer round-trips, so re-minifying the
   parsed document reproduces the writer's bytes), the shard partition
   is re-derived from the planner's formula, and the merge identities
   are checked point by point.

   The frontier-union rule leans on the archive's eviction invariant:
   a merged representative is always one of the inserted (checkpoint)
   points, and no inserted point may strictly dominate a kept
   representative — if it did, its grid box would either have claimed
   the same box (winning the representative seat) or evicted the
   representative's box.  Both halves hold for every eps. *)

module Json = Ftes_util.Json
module D = Diagnostic
open Json

let campaign_exn subject =
  match subject.Subject.campaign with
  | Some c -> c
  | None -> invalid_arg "verifier: campaign rule run without campaign docs"

let get path json accessor = Result.bind (member path json) accessor

let manifest_fingerprint manifest = Ftes_util.Fingerprint.of_json manifest

(* The planner's formula; must match [Ftes_campaign.Manifest.shard_range]. *)
let plan_range ~apps ~shards i = (i * apps / shards, (i + 1) * apps / shards)

(* apps, shards and the cell count, when the manifest is well-formed
   enough to extract them; rules beyond campaign/manifest-schema stay
   silent otherwise (that rule already reports the defect). *)
let plan_of_manifest manifest =
  let* apps = get "apps" manifest to_int in
  let* shards = get "shards" manifest to_int in
  let axis name =
    let* items = get name manifest to_list in
    Ok (List.length items)
  in
  let* n_sers = axis "sers" in
  let* n_hpds = axis "hpds" in
  let* n_policies = axis "policies" in
  if apps < 1 || shards < 1 || shards > apps then Error "degenerate plan"
  else Ok (apps, shards, n_sers * n_hpds * n_policies)

(* campaign/manifest-schema *)
let check_manifest subject =
  let rule = "campaign/manifest-schema" in
  let c = campaign_exn subject in
  let m = c.Subject.manifest in
  let err fmt = Printf.ksprintf (fun d -> [ D.error ~rule "%s" d ]) fmt in
  let version =
    match get "schema_version" m to_int with
    | Ok 1 -> []
    | Ok v -> err "manifest: unsupported schema_version %d (supported: 1)" v
    | Error e -> err "manifest: %s" e
  in
  let int_field name low =
    match get name m to_int with
    | Ok v when v >= low -> []
    | Ok v -> err "manifest: %s = %d (must be >= %d)" name v low
    | Error e -> err "manifest: %s" e
  in
  let axis name =
    match get name m to_list with
    | Ok [] -> err "manifest: empty %s axis" name
    | Ok _ -> []
    | Error e -> err "manifest: %s" e
  in
  let shards_bound =
    match (get "apps" m to_int, get "shards" m to_int) with
    | Ok apps, Ok shards when shards > apps ->
        err "manifest: %d shards for %d applications" shards apps
    | _ -> []
  in
  let eps =
    match get "eps" m to_float with
    | Ok e when Float.is_finite e && e >= 0.0 -> []
    | Ok e -> err "manifest: eps = %g (must be finite and >= 0)" e
    | Error e -> err "manifest: %s" e
  in
  let params =
    match member "params" m with
    | Ok (Object _) -> []
    | Ok _ -> err "manifest: params is not an object"
    | Error e -> err "manifest: %s" e
  in
  List.concat
    [ version; int_field "apps" 1; int_field "shards" 1; int_field "seed" 0;
      shards_bound; axis "sers"; axis "hpds"; axis "policies"; eps; params ]

(* campaign/shard-partition: every checkpoint's [shard, lo, hi) matches
   the planner's formula, no shard is claimed twice — which makes the
   ranges disjoint and, once all shards are present, a cover of
   [0, apps).  Completeness is only demanded once a merged result
   exists. *)
let check_partition subject =
  let rule = "campaign/shard-partition" in
  let c = campaign_exn subject in
  match plan_of_manifest c.Subject.manifest with
  | Error _ -> []
  | Ok (apps, shards, _) ->
      let seen = Hashtbl.create 8 in
      let per_checkpoint =
        List.concat_map
          (fun (label, doc) ->
            match
              let* shard = get "shard" doc to_int in
              let* lo = get "lo" doc to_int in
              let* hi = get "hi" doc to_int in
              Ok (shard, lo, hi)
            with
            | Error e -> [ D.error ~rule "%s: %s" label e ]
            | Ok (shard, lo, hi) ->
                if shard < 0 || shard >= shards then
                  [ D.error ~rule "%s: shard %d outside [0, %d)" label shard
                      shards ]
                else
                  let dup =
                    match Hashtbl.find_opt seen shard with
                    | Some other ->
                        [ D.error ~rule
                            "%s: shard %d already checkpointed by %s" label
                            shard other ]
                    | None ->
                        Hashtbl.replace seen shard label;
                        []
                  in
                  let exp_lo, exp_hi = plan_range ~apps ~shards shard in
                  let range =
                    if lo <> exp_lo || hi <> exp_hi then
                      [ D.error ~rule
                          "%s: shard %d covers [%d, %d), the plan says \
                           [%d, %d)"
                          label shard lo hi exp_lo exp_hi ]
                    else []
                  in
                  dup @ range)
          c.Subject.checkpoints
      in
      let missing =
        if c.Subject.merged = None then []
        else
          List.filter_map
            (fun shard ->
              if Hashtbl.mem seen shard then None
              else
                Some
                  (D.error ~rule
                     "merged result present but shard %d has no checkpoint \
                      — the partition does not cover [0, %d)"
                     shard apps))
            (List.init shards Fun.id)
      in
      per_checkpoint @ missing

(* campaign/checkpoint-fingerprint: every checkpoint (and the merged
   result) is stamped with the fingerprint of this manifest, and speaks
   schema version 1. *)
let check_fingerprints subject =
  let rule = "campaign/checkpoint-fingerprint" in
  let c = campaign_exn subject in
  let expected = manifest_fingerprint c.Subject.manifest in
  let check_doc label doc =
    let version =
      match get "schema_version" doc to_int with
      | Ok 1 -> []
      | Ok v ->
          [ D.error ~rule "%s: unsupported schema_version %d (supported: 1)"
              label v ]
      | Error e -> [ D.error ~rule "%s: %s" label e ]
    in
    let fp =
      match get "manifest_fingerprint" doc to_string_value with
      | Ok fp when fp = expected -> []
      | Ok fp ->
          [ D.error ~rule
              "%s: stamped for manifest %s, this campaign's manifest is %s"
              label fp expected ]
      | Error e -> [ D.error ~rule "%s: %s" label e ]
    in
    version @ fp
  in
  List.concat_map (fun (label, doc) -> check_doc label doc) c.Subject.checkpoints
  @ (match c.Subject.merged with
    | None -> []
    | Some doc -> check_doc "merged" doc)

let shard_docs_in_order c ~shards =
  let by_shard = Array.make shards None in
  List.iter
    (fun (label, doc) ->
      match get "shard" doc to_int with
      | Ok shard when shard >= 0 && shard < shards ->
          if by_shard.(shard) = None then by_shard.(shard) <- Some (label, doc)
      | _ -> ())
    c.Subject.checkpoints;
  let rec collect acc i =
    if i < 0 then Some acc
    else
      match by_shard.(i) with
      | None -> None
      | Some entry -> collect (entry :: acc) (i - 1)
  in
  collect [] (shards - 1)

let cells_of doc = Result.bind (member "cells" doc) to_list

(* campaign/merge-costs: per cell, the merged cost array is exactly the
   shard cost arrays concatenated in shard order, [apps] entries in
   total, under matching cell keys. *)
let check_merge_costs subject =
  let rule = "campaign/merge-costs" in
  let c = campaign_exn subject in
  match (c.Subject.merged, plan_of_manifest c.Subject.manifest) with
  | None, _ | _, Error _ -> []
  | Some merged, Ok (apps, shards, n_cells) -> (
      match shard_docs_in_order c ~shards with
      | None -> [] (* campaign/shard-partition reports the gap *)
      | Some ordered -> (
          match cells_of merged with
          | Error e -> [ D.error ~rule "merged: %s" e ]
          | Ok merged_cells ->
              if List.length merged_cells <> n_cells then
                [ D.error ~rule "merged: %d cells, the grid has %d"
                    (List.length merged_cells) n_cells ]
              else
                List.concat
                  (List.mapi
                     (fun index mcell ->
                       let key_of doc =
                         let* ser = get "ser" doc to_float in
                         let* hpd = get "hpd" doc to_float in
                         let* policy = get "policy" doc to_string_value in
                         Ok (ser, hpd, policy)
                       in
                       match
                         let* mkey = key_of mcell in
                         let* mcosts = get "costs" mcell to_list in
                         Ok (mkey, mcosts)
                       with
                       | Error e ->
                           [ D.error ~rule "merged cell %d: %s" index e ]
                       | Ok (mkey, mcosts) ->
                           let parts =
                             List.map
                               (fun (label, doc) ->
                                 match cells_of doc with
                                 | Error e -> Error (label, e)
                                 | Ok cells -> (
                                     match List.nth_opt cells index with
                                     | None ->
                                         Error
                                           ( label,
                                             Printf.sprintf
                                               "no cell %d" index )
                                     | Some cell -> (
                                         match
                                           let* key = key_of cell in
                                           let* costs =
                                             get "costs" cell to_list
                                           in
                                           Ok (key, costs)
                                         with
                                         | Error e -> Error (label, e)
                                         | Ok ok -> Ok (label, ok))))
                               ordered
                           in
                           let errors =
                             List.filter_map
                               (function
                                 | Error (label, e) ->
                                     Some
                                       (D.error ~rule "%s, cell %d: %s" label
                                          index e)
                                 | Ok _ -> None)
                               parts
                           in
                           if errors <> [] then errors
                           else
                             let keyed =
                               List.filter_map Result.to_option parts
                             in
                             let key_mismatch =
                               List.filter_map
                                 (fun (label, (key, _)) ->
                                   if key <> mkey then
                                     Some
                                       (D.error ~rule
                                          "%s, cell %d: key differs from \
                                           the merged cell's"
                                          label index)
                                   else None)
                                 keyed
                             in
                             let concat =
                               List.concat_map
                                 (fun (_, (_, costs)) -> costs)
                                 keyed
                             in
                             let cost_mismatch =
                               if List.length mcosts <> apps then
                                 [ D.error ~rule
                                     "merged cell %d: %d cost entries for \
                                      %d applications"
                                     index (List.length mcosts) apps ]
                               else if concat <> mcosts then
                                 [ D.error ~rule
                                     "merged cell %d: costs are not the \
                                      concatenation of the shard costs"
                                     index ]
                               else []
                             in
                             key_mismatch @ cost_mismatch)
                     merged_cells)))

(* One frontier point, reduced to comparable data. *)
type pt = { vec : float * float * float; arrays : int list list }

let pt_of_json json =
  let* cost = get "cost" json to_float in
  let* slack = get "slack_ms" json to_float in
  let* margin = get "margin_log10" json to_float in
  let ints name =
    let* items = get name json to_list in
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
          let* v = to_int item in
          build (v :: acc) rest
    in
    build [] items
  in
  let* members = ints "members" in
  let* levels = ints "levels" in
  let* reexecs = ints "reexecs" in
  let* mapping = ints "mapping" in
  (* min-oriented vector: cost minimized, slack and margin maximized *)
  Ok { vec = (cost, -.slack, -.margin); arrays = [ members; levels; reexecs; mapping ] }

let strictly_dominates (a1, a2, a3) (b1, b2, b3) =
  a1 <= b1 && a2 <= b2 && a3 <= b3 && (a1 < b1 || a2 < b2 || a3 < b3)

(* campaign/merge-frontier: the merged frontier is exactly what the
   union of the checkpoint points supports — every merged point is one
   of the checkpoint points, and no checkpoint point strictly dominates
   a merged point (valid for every eps; see the header comment). *)
let check_merge_frontier subject =
  let rule = "campaign/merge-frontier" in
  let c = campaign_exn subject in
  match (c.Subject.merged, plan_of_manifest c.Subject.manifest) with
  | None, _ | _, Error _ -> []
  | Some merged, Ok (_, shards, _) -> (
      match (shard_docs_in_order c ~shards, cells_of merged) with
      | None, _ | _, Error _ -> [] (* reported by the sibling rules *)
      | Some ordered, Ok merged_cells ->
          List.concat
            (List.mapi
               (fun index mcell ->
                 let merged_pts =
                   let* frontier = member "frontier" mcell in
                   let* items = get "points" frontier to_list in
                   let rec build acc row = function
                     | [] -> Ok (List.rev acc)
                     | item :: rest -> (
                         match pt_of_json item with
                         | Ok p -> build (p :: acc) (row + 1) rest
                         | Error e ->
                             Error (Printf.sprintf "point %d: %s" row e))
                   in
                   build [] 1 items
                 in
                 let shard_pts =
                   List.fold_left
                     (fun acc (label, doc) ->
                       let* acc = acc in
                       let* cells = cells_of doc in
                       match List.nth_opt cells index with
                       | None -> Error (label ^ ": missing cell")
                       | Some cell ->
                           let* items = get "points" cell to_list in
                           let rec build acc = function
                             | [] -> Ok acc
                             | item :: rest -> (
                                 match pt_of_json item with
                                 | Ok p -> build (p :: acc) rest
                                 | Error e -> Error (label ^ ": " ^ e))
                           in
                           build acc items)
                     (Ok []) ordered
                 in
                 match (merged_pts, shard_pts) with
                 | Error e, _ | _, Error e ->
                     [ D.error ~rule "cell %d: %s" index e ]
                 | Ok merged_pts, Ok shard_pts ->
                     List.concat_map
                       (fun p ->
                         let provenance =
                           if List.exists (fun s -> s = p) shard_pts then []
                           else
                             [ D.error ~rule
                                 "cell %d: merged point (cost %g) appears \
                                  in no shard checkpoint"
                                 index
                                 (let c, _, _ = p.vec in
                                  c) ]
                         in
                         let dominated =
                           if
                             List.exists
                               (fun s -> strictly_dominates s.vec p.vec)
                               shard_pts
                           then
                             [ D.error ~rule
                                 "cell %d: a checkpoint point strictly \
                                  dominates a merged frontier point \
                                  (cost %g)"
                                 index
                                 (let c, _, _ = p.vec in
                                  c) ]
                           else []
                         in
                         provenance @ dominated)
                       merged_pts)
               merged_cells))

let all =
  [ Rule.make ~id:"campaign/manifest-schema"
      ~synopsis:"campaign manifest is well-formed v1"
      ~requires:Rule.Needs_campaign check_manifest;
    Rule.make ~id:"campaign/shard-partition"
      ~synopsis:"shard checkpoints follow the disjoint covering plan"
      ~requires:Rule.Needs_campaign check_partition;
    Rule.make ~id:"campaign/checkpoint-fingerprint"
      ~synopsis:"checkpoints and merge are stamped for this manifest"
      ~requires:Rule.Needs_campaign check_fingerprints;
    Rule.make ~id:"campaign/merge-costs"
      ~synopsis:"merged costs are the shard costs concatenated"
      ~requires:Rule.Needs_campaign check_merge_costs;
    Rule.make ~id:"campaign/merge-frontier"
      ~synopsis:"merged frontier is the undominated union of shard points"
      ~requires:Rule.Needs_campaign check_merge_frontier ]
