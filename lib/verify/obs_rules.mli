(** Internal-consistency rules over an attached metrics snapshot
    ({!Subject.with_metrics}): counters are non-negative, every
    instrumented cache satisfies hits + misses = lookups, histogram
    buckets sum to their counts, and span completion counters agree
    with their latency histograms. *)

val all : Rule.t list
