type severity = Error | Warn | Info

let severity_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

type location =
  | Global
  | Process of int
  | Member of int
  | Edge of { src : int; dst : int }
  | Message of { src : int; dst : int }

let location_name = function
  | Global -> "global"
  | Process _ -> "process"
  | Member _ -> "member"
  | Edge _ -> "edge"
  | Message _ -> "message"

type t = {
  rule : string;
  severity : severity;
  location : location;
  detail : string;
}

let make ?(loc = Global) severity ~rule detail =
  { rule; severity; location = loc; detail }

let error ?loc ~rule fmt =
  Printf.ksprintf (fun detail -> make ?loc Error ~rule detail) fmt

let warn ?loc ~rule fmt =
  Printf.ksprintf (fun detail -> make ?loc Warn ~rule detail) fmt

let info ?loc ~rule fmt =
  Printf.ksprintf (fun detail -> make ?loc Info ~rule detail) fmt

let pp_location ppf = function
  | Global -> Format.pp_print_string ppf "-"
  | Process p -> Format.fprintf ppf "P%d" (p + 1)
  | Member m -> Format.fprintf ppf "slot %d" m
  | Edge { src; dst } -> Format.fprintf ppf "edge %d->%d" src dst
  | Message { src; dst } -> Format.fprintf ppf "msg %d->%d" src dst

let pp ppf t =
  Format.fprintf ppf "%-5s %-24s %-12s %s"
    (severity_name t.severity)
    t.rule
    (Format.asprintf "%a" pp_location t.location)
    t.detail
