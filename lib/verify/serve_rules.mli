(** Rules over a design-service response stream.

    The daemon ([ftes serve]) answers each request line with one JSON
    envelope; these rules audit a captured stream of those envelopes —
    wire format, ordering and telemetry consistency — from the raw
    parsed JSON, independently of the daemon's own encoder/decoder
    pair, so an encoder bug cannot vouch for itself.

    - [serve/envelope]: every response is a v1 envelope with a
      non-empty id, a known verdict, a payload object, and an error
      message exactly when the verdict is ["error"]; executed payloads
      carry the versioned report header (schema_version, subject,
      strategy).
    - [serve/order]: [seq] numbers are contiguous and ascending — the
      stream is 1:1 with the request stream and in request order,
      whatever concurrency produced it.
    - [serve/verdict]: the envelope verdict agrees with the payload's
      own ["feasible"] claim.
    - [serve/telemetry]: per-request counters are non-negative and the
      process-wide cache counters — including the recorded-walk
      ["registry"] pair when present (it postdates the first envelope
      version, so absence is tolerated) — never decrease along the
      stream. *)

val all : Rule.t list
