(* Numerical contracts of the SFP layer (formulae (1)-(6) of the
   paper): the grain rounding is pessimistic in the right direction,
   the analysis is monotone in the re-execution count and the hardening
   level, the closed-form bound stays above the exact dynamic program,
   and the per-hour reliability exponentiation is consistent.

   Every check compares the producer's rounded values against unrounded
   references recomputed here, so a rounding applied in the wrong
   direction — optimistic instead of pessimistic — is caught even when
   it is only a grain wide. *)

module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Application = Ftes_model.Application
module Sfp = Ftes_sfp.Sfp
module Bound = Ftes_sfp.Bound
module Rounding = Ftes_util.Rounding
module Symmetric = Ftes_util.Symmetric
module Tolerance = Ftes_util.Tolerance
module D = Diagnostic

let design_exn subject =
  match subject.Subject.design with
  | Some d -> d
  | None -> invalid_arg "verifier: SFP rule run without a design"

(* SFP rules only run on designs whose probability tables and counters
   are themselves well-formed; corrupt designs are the structural rules'
   business and would make the analysis constructors raise. *)
let analysable problem design =
  Design.validate problem design = Ok ()

(* Iterate a member-level check over slot, probability vector and k. *)
let per_member problem design f =
  List.init (Design.n_members design) Fun.id
  |> List.concat_map (fun slot ->
         let probs = Design.pfail_vector problem design ~member:slot in
         f ~slot ~probs ~k:design.Design.reexecs.(slot))

(* Number of fault multisets the enumerated reference would visit:
   sum over f of C(n+f-1, f). *)
let enumeration_size ~n ~k =
  let choose n r =
    let acc = ref 1.0 in
    for i = 1 to r do
      !acc *. float_of_int (n - r + i) /. float_of_int i |> ( := ) acc
    done;
    !acc
  in
  let total = ref 0.0 in
  for f = 1 to k do
    total := !total +. choose (n + f - 1) f
  done;
  !total

(* sfp/rounding: Pr(0) rounds down, Pr(f) rounds down, Pr(f > k) rounds
   up — all relative to the unrounded references — and the dynamic
   program agrees with the explicit multiset enumeration where the
   latter is affordable. *)
let check_rounding subject =
  let rule = "sfp/rounding" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  if not (analysable problem design) then []
  else
    per_member problem design (fun ~slot ~probs ~k ->
        let loc = D.Member slot in
        let analysis = Sfp.node_analysis ~kmax:(max k 1) probs in
        let raw0 =
          Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 probs
        in
        let acc = ref [] in
        if Tolerance.gt ~eps:Tolerance.prob_eps (Sfp.pr_zero analysis) raw0
        then
          acc :=
            D.error ~loc ~rule
              "Pr(0) = %.17g rounds above the exact %.17g (formula (1) must \
               round down)"
              (Sfp.pr_zero analysis) raw0
            :: !acc;
        let h = Symmetric.complete_homogeneous probs k in
        for f = 1 to k do
          let raw = raw0 *. h.(f) in
          if
            Tolerance.gt ~eps:Tolerance.prob_eps (Sfp.pr_faults analysis ~f)
              raw
          then
            acc :=
              D.error ~loc ~rule
                "Pr(%d) = %.17g rounds above the exact %.17g (formula (2) \
                 must round down)"
                f
                (Sfp.pr_faults analysis ~f)
                raw
              :: !acc
        done;
        let recovered = ref 0.0 in
        for f = 0 to k do
          recovered := !recovered +. (raw0 *. h.(f))
        done;
        let exact_raw = Float.max 0.0 (1.0 -. !recovered) in
        if
          Tolerance.lt ~eps:Tolerance.prob_eps
            (Sfp.pr_exceeds analysis ~k)
            exact_raw
        then
          acc :=
            D.error ~loc ~rule
              "Pr(f > %d) = %.17g rounds below the exact %.17g (formula (4) \
               must round up)"
              k
              (Sfp.pr_exceeds analysis ~k)
              exact_raw
            :: !acc;
        let n = Array.length probs in
        if n > 0 && k > 0 && enumeration_size ~n ~k <= 5000.0 then begin
          let enumerated = Sfp.pr_exceeds_enumerated probs ~k in
          let tol = float_of_int (2 * (k + 1)) *. Rounding.grain in
          if
            not
              (Tolerance.approx ~eps:tol (Sfp.pr_exceeds analysis ~k)
                 enumerated)
          then
            acc :=
              D.error ~loc ~rule
                "dynamic program gives Pr(f > %d) = %.17g, multiset \
                 enumeration gives %.17g"
                k
                (Sfp.pr_exceeds analysis ~k)
                enumerated
              :: !acc
        end;
        List.rev !acc)

(* sfp/monotone-k: more re-executions never increase the probability of
   exceeding the budget. *)
let check_monotone_k subject =
  let rule = "sfp/monotone-k" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  if not (analysable problem design) then []
  else
    per_member problem design (fun ~slot ~probs ~k ->
        let kmax = k + 1 in
        let analysis = Sfp.node_analysis ~kmax probs in
        let acc = ref [] in
        for k' = 0 to kmax - 1 do
          let here = Sfp.pr_exceeds analysis ~k:k' in
          let next = Sfp.pr_exceeds analysis ~k:(k' + 1) in
          if Tolerance.gt ~eps:Tolerance.prob_eps next here then
            acc :=
              D.error ~loc:(D.Member slot) ~rule
                "Pr(f > %d) = %.17g exceeds Pr(f > %d) = %.17g" (k' + 1) next
                k' here
              :: !acc
        done;
        List.rev !acc)

(* sfp/monotone-hardening: at a fixed k, hardening a member never
   increases its probability of exceeding the re-execution budget.
   Evaluated on the member's actual process set across every pair of
   adjacent h-versions. *)
let check_monotone_hardening subject =
  let rule = "sfp/monotone-hardening" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  if not (analysable problem design) then []
  else
    List.init (Design.n_members design) Fun.id
    |> List.concat_map (fun slot ->
           let j = design.Design.members.(slot) in
           let k = design.Design.reexecs.(slot) in
           let procs = Design.procs_on design ~member:slot in
           let vector level =
             Array.of_list
               (List.map
                  (fun proc -> Problem.pfail problem ~node:j ~level ~proc)
                  procs)
           in
           let exceeds level =
             Sfp.pr_exceeds
               (Sfp.node_analysis ~kmax:(max k 1) (vector level))
               ~k
           in
           (* Per-term down rounding may wobble each value by a grain;
              the monotonicity tolerance covers the k+1 rounded terms on
              both sides. *)
           let tol = float_of_int (2 * (k + 2)) *. Rounding.grain in
           let acc = ref [] in
           for level = 1 to Problem.levels problem j - 1 do
             let lower = exceeds level and higher = exceeds (level + 1) in
             if Tolerance.gt ~eps:tol higher lower then
               acc :=
                 D.error ~loc:(D.Member slot) ~rule
                   "Pr(f > %d) grows from %.17g at h=%d to %.17g at h=%d" k
                   lower level higher (level + 1)
                 :: !acc
           done;
           List.rev !acc)

(* sfp/bound-sound: the closed-form S^(k+1)/(1-S) bound dominates the
   exact (unrounded) analysis on every member's probability vector. *)
let check_bound_sound subject =
  let rule = "sfp/bound-sound" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  if not (analysable problem design) then []
  else
    per_member problem design (fun ~slot ~probs ~k ->
        if Bound.is_sound probs ~k then []
        else
          [ D.error ~loc:(D.Member slot) ~rule
              "closed-form bound %.17g falls below the exact Pr(f > %d)"
              (Bound.pr_exceeds_upper probs ~k)
              k ])

(* sfp/per-hour: formula (6)'s exponent bookkeeping — iterations per
   hour from the period, the (1 - p)^n exponentiation, the goal 1 - γ
   and the verdict's own consistency. *)
let check_per_hour subject =
  let rule = "sfp/per-hour" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  if not (analysable problem design) then []
  else begin
    let app = problem.Problem.app in
    let verdict = Sfp.evaluate problem design in
    let acc = ref [] in
    let iterations = 3600.0 *. 1000.0 /. app.Application.period_ms in
    if
      not
        (Tolerance.approx ~eps:1e-6
           (Application.iterations_per_hour app)
           iterations)
    then
      acc :=
        D.error ~rule "iterations per hour %.17g, period %g ms implies %.17g"
          (Application.iterations_per_hour app)
          app.Application.period_ms iterations
        :: !acc;
    let p = verdict.Sfp.per_iteration_failure in
    let expected =
      if p >= 1.0 then 0.0 else Float.pow (1.0 -. p) (Float.ceil iterations)
    in
    if
      not (Tolerance.approx ~eps:1e-9 verdict.Sfp.reliability_per_hour expected)
    then
      acc :=
        D.error ~rule
          "reliability %.17g but (1 - %.17g)^%.0f = %.17g"
          verdict.Sfp.reliability_per_hour p (Float.ceil iterations) expected
        :: !acc;
    if
      not
        (Tolerance.approx ~eps:Tolerance.prob_eps verdict.Sfp.goal
           (1.0 -. app.Application.gamma))
    then
      acc :=
        D.error ~rule "goal %.17g but 1 - γ = %.17g" verdict.Sfp.goal
          (1.0 -. app.Application.gamma)
        :: !acc;
    if
      verdict.Sfp.meets_goal
      <> (verdict.Sfp.reliability_per_hour >= verdict.Sfp.goal)
    then
      acc :=
        D.error ~rule
          "verdict says meets_goal=%b but reliability %.17g vs goal %.17g"
          verdict.Sfp.meets_goal verdict.Sfp.reliability_per_hour
          verdict.Sfp.goal
        :: !acc;
    List.rev !acc
  end

(* sfp/goal: the reliability guarantee itself — formula (6) holds for
   the design. *)
let check_goal subject =
  let rule = "sfp/goal" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  if not (analysable problem design) then []
  else begin
    let verdict = Sfp.evaluate problem design in
    if verdict.Sfp.meets_goal then []
    else
      [ D.error ~rule
          "per-hour reliability %.11f misses the goal %.11f (γ = %g)"
          verdict.Sfp.reliability_per_hour verdict.Sfp.goal
          problem.Problem.app.Application.gamma ]
  end

(* sfp/cache: the memoized SFP tables a producer attached match a
   from-scratch recomputation field by field — the probability vector,
   Pr(0), every h_f term (equivalently every Pr(f)), and the derived
   Pr(f > k) at the design's re-execution counts.  Memoization must be
   invisible: any divergence past the rounding grain means a stale or
   corrupted cache entry. *)
let check_cache subject =
  let rule = "sfp/cache" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  let tables =
    match subject.Subject.sfp_tables with
    | Some tables -> tables
    | None -> invalid_arg "verifier: SFP cache rule run without tables"
  in
  if not (analysable problem design) then []
  else if Array.length tables <> Design.n_members design then
    [ D.error ~rule "cache holds %d member tables but the design has %d slots"
        (Array.length tables) (Design.n_members design) ]
  else
    List.init (Design.n_members design) Fun.id
    |> List.concat_map (fun slot ->
           let loc = D.Member slot in
           let cached = tables.(slot) in
           let probs = Design.pfail_vector problem design ~member:slot in
           if Array.length cached.Sfp.probs <> Array.length probs then
             [ D.error ~loc ~rule
                 "cached table covers %d processes but the mapping puts %d \
                  on this member"
                 (Array.length cached.Sfp.probs)
                 (Array.length probs) ]
           else begin
             let fresh = Sfp.node_analysis ~kmax:cached.Sfp.kmax probs in
             let acc = ref [] in
             Array.iteri
               (fun i p ->
                 if
                   not
                     (Tolerance.approx ~eps:Tolerance.prob_eps
                        cached.Sfp.probs.(i) p)
                 then
                   acc :=
                     D.error ~loc ~rule
                       "cached failure probability %.17g for process slot %d \
                        differs from the design's %.17g"
                       cached.Sfp.probs.(i) i p
                     :: !acc)
               probs;
             if
               not
                 (Tolerance.approx ~eps:Tolerance.prob_eps cached.Sfp.pr0
                    (Sfp.pr_zero fresh))
             then
               acc :=
                 D.error ~loc ~rule
                   "cached Pr(0) = %.17g but recomputation gives %.17g"
                   cached.Sfp.pr0 (Sfp.pr_zero fresh)
                 :: !acc;
             let kmax = min cached.Sfp.kmax (Sfp.kmax fresh) in
             for f = 0 to kmax do
               if
                 not
                   (Tolerance.approx ~eps:Tolerance.prob_eps
                      cached.Sfp.homogeneous.(f)
                      fresh.Sfp.homogeneous.(f))
               then
                 acc :=
                   D.error ~loc ~rule
                     "cached h_%d = %.17g but recomputation gives %.17g" f
                     cached.Sfp.homogeneous.(f)
                     fresh.Sfp.homogeneous.(f)
                   :: !acc
             done;
             let k = min design.Design.reexecs.(slot) kmax in
             if
               not
                 (Tolerance.approx ~eps:Tolerance.prob_eps
                    (Sfp.pr_exceeds cached ~k) (Sfp.pr_exceeds fresh ~k))
             then
               acc :=
                 D.error ~loc ~rule
                   "cached table yields Pr(f > %d) = %.17g but recomputation \
                    gives %.17g"
                   k
                   (Sfp.pr_exceeds cached ~k)
                   (Sfp.pr_exceeds fresh ~k)
                 :: !acc;
             List.rev !acc
           end)

let all =
  [ Rule.make ~id:"sfp/rounding"
      ~synopsis:"formulae (1)-(4) round pessimistically; DP matches \
                 enumeration"
      ~requires:Rule.Needs_design check_rounding;
    Rule.make ~id:"sfp/monotone-k"
      ~synopsis:"Pr(f > k) is non-increasing in k"
      ~requires:Rule.Needs_design check_monotone_k;
    Rule.make ~id:"sfp/monotone-hardening"
      ~synopsis:"Pr(f > k) is non-increasing in the hardening level"
      ~requires:Rule.Needs_design check_monotone_hardening;
    Rule.make ~id:"sfp/bound-sound"
      ~synopsis:"the closed-form bound dominates the exact analysis"
      ~requires:Rule.Needs_design check_bound_sound;
    Rule.make ~id:"sfp/per-hour"
      ~synopsis:"per-hour exponentiation and verdict consistency"
      ~requires:Rule.Needs_design check_per_hour;
    Rule.make ~id:"sfp/goal"
      ~synopsis:"the reliability goal 1 - γ holds (formula (6))"
      ~requires:Rule.Needs_design check_goal;
    Rule.make ~id:"sfp/cache"
      ~synopsis:"memoized SFP tables match from-scratch recomputation"
      ~requires:Rule.Needs_sfp_tables check_cache ]
