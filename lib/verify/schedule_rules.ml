(* Schedule soundness, recomputed independently of the scheduler.

   The scheduler records its own bookkeeping ([node_finish],
   [node_worst], [length], per-entry [commit]); these rules re-derive
   every one of those quantities from the raw entries, the design tables
   and the declared slack policy, and flag any disagreement.  The
   re-derivation deliberately avoids the scheduler's incremental state:
   per-slot placement order is recovered by sorting entries by start
   time, maxima are folds over the finished schedule. *)

module Task_graph = Ftes_model.Task_graph
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Application = Ftes_model.Application
module Scheduler = Ftes_sched.Scheduler
module Schedule = Ftes_sched.Schedule
module Bus = Ftes_sched.Bus
module Tolerance = Ftes_util.Tolerance
module D = Diagnostic

let context subject =
  match (subject.Subject.design, subject.Subject.schedule) with
  | Some design, Some schedule -> (subject.Subject.problem, design, schedule)
  | _ -> invalid_arg "verifier: schedule rule run without a full subject"

let mu problem = problem.Problem.app.Application.recovery_overhead_ms

(* Mapped slot of a process, or None when the design is itself corrupt
   (the design rules report that separately). *)
let slot_of design proc =
  let mapping = design.Design.mapping in
  if proc < 0 || proc >= Array.length mapping then None
  else begin
    let slot = mapping.(proc) in
    if slot < 0 || slot >= Design.n_members design then None else Some slot
  end

let wcet_of problem design proc =
  match slot_of design proc with
  | Some slot
    when design.Design.members.(slot) >= 0
         && design.Design.members.(slot) < Problem.n_library problem
         && design.Design.levels.(slot) >= 1
         && design.Design.levels.(slot)
            <= Problem.levels problem design.Design.members.(slot) ->
      Some (Design.wcet problem design ~proc)
  | Some _ | None -> None

let entries_on schedule slot =
  Array.to_list schedule.Schedule.entries
  |> List.filter (fun (e : Schedule.entry) -> e.slot = slot)

(* sched/entries: one entry per process, self-consistent indices, and
   each process sits on the slot its design maps it to. *)
let check_entries subject =
  let rule = "sched/entries" in
  let problem, design, schedule = context subject in
  let n = Problem.n_processes problem in
  if Array.length schedule.Schedule.entries <> n then
    [ D.error ~rule "%d schedule entries for %d processes"
        (Array.length schedule.Schedule.entries)
        n ]
  else begin
    let acc = ref [] in
    Array.iteri
      (fun i (e : Schedule.entry) ->
        if e.proc <> i then
          acc :=
            D.error ~loc:(D.Process i) ~rule
              "entry %d records process %d" i e.proc
            :: !acc;
        match slot_of design i with
        | Some slot when slot <> e.slot ->
            acc :=
              D.error ~loc:(D.Process i) ~rule
                "scheduled on slot %d but mapped to slot %d" e.slot slot
              :: !acc
        | Some _ -> ()
        | None ->
            acc :=
              D.error ~loc:(D.Process i) ~rule
                "entry slot %d has no valid mapping target" e.slot
              :: !acc)
      schedule.Schedule.entries;
    List.rev !acc
  end

(* sched/wcet: executions start at or after 0, last at least the WCET
   table says (checkpoint saves may only inflate them), and never commit
   before they finish. *)
let check_wcet subject =
  let rule = "sched/wcet" in
  let problem, design, schedule = context subject in
  Array.to_list schedule.Schedule.entries
  |> List.concat_map (fun (e : Schedule.entry) ->
         let loc = D.Process e.proc in
         let start =
           if Tolerance.lt e.start 0.0 then
             [ D.error ~loc ~rule "starts at %g ms, before time 0" e.start ]
           else []
         in
         let duration =
           match wcet_of problem design e.proc with
           | Some w when Tolerance.lt (e.finish -. e.start) w ->
               [ D.error ~loc ~rule
                   "runs %g ms, shorter than its %g ms WCET"
                   (e.finish -. e.start) w ]
           | Some _ | None -> []
         in
         let commit =
           if Tolerance.lt e.commit e.finish then
             [ D.error ~loc ~rule "commits at %g ms, before its finish %g ms"
                 e.commit e.finish ]
           else []
         in
         start @ duration @ commit)

(* sched/precedence: same-node successors wait for the producer's
   finish; cross-node successors for a bus message that leaves no
   earlier than the producer's worst-case commit, occupies the bus at
   least its WCTT, and arrives before the consumer starts. *)
let check_precedence subject =
  let rule = "sched/precedence" in
  let problem, design, schedule = context subject in
  let graph = Problem.graph problem in
  let n = Array.length schedule.Schedule.entries in
  let find_message (e : Task_graph.edge) =
    List.find_opt
      (fun (m : Schedule.message) ->
        m.edge.Task_graph.src = e.src && m.edge.Task_graph.dst = e.dst)
      schedule.Schedule.messages
  in
  Task_graph.edges graph
  |> List.concat_map (fun (e : Task_graph.edge) ->
         if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then []
         else begin
           let loc = D.Edge { src = e.src; dst = e.dst } in
           let src = schedule.Schedule.entries.(e.src) in
           let dst = schedule.Schedule.entries.(e.dst) in
           if slot_of design e.src = slot_of design e.dst then begin
             if Tolerance.lt dst.start src.finish then
               [ D.error ~loc ~rule
                   "same-node successor starts at %g ms before the producer \
                    finishes at %g ms"
                   dst.start src.finish ]
             else []
           end
           else begin
             match find_message e with
             | None ->
                 [ D.error ~loc ~rule "cross-node edge has no bus message" ]
             | Some m ->
                 let mloc = D.Message { src = e.src; dst = e.dst } in
                 let leaves =
                   if Tolerance.lt m.bus_start src.commit then
                     [ D.error ~loc:mloc ~rule
                         "message leaves at %g ms before the producer's \
                          worst-case commit %g ms"
                         m.bus_start src.commit ]
                   else []
                 in
                 let occupancy =
                   (* TDMA fragments stretch the occupancy over slot
                      gaps, but can never compress it below the WCTT. *)
                   if
                     Tolerance.lt
                       (m.bus_finish -. m.bus_start)
                       e.transmission_ms
                   then
                     [ D.error ~loc:mloc ~rule
                         "bus occupancy %g ms shorter than the %g ms WCTT"
                         (m.bus_finish -. m.bus_start)
                         e.transmission_ms ]
                   else []
                 in
                 let arrives =
                   if Tolerance.lt dst.start m.bus_finish then
                     [ D.error ~loc ~rule
                         "consumer starts at %g ms before the message arrives \
                          at %g ms"
                         dst.start m.bus_finish ]
                   else []
                 in
                 leaves @ occupancy @ arrives
           end
         end)

let overlapping intervals =
  let sorted = List.sort compare intervals in
  let rec scan = function
    | (_, f1, a) :: ((s2, _, b) :: _ as rest) ->
        if Tolerance.lt s2 f1 then Some (a, b) else scan rest
    | [ _ ] | [] -> None
  in
  scan sorted

(* sched/node-overlap: fault-free executions on one node never
   overlap. *)
let check_node_overlap subject =
  let rule = "sched/node-overlap" in
  let _, design, schedule = context subject in
  List.init (Design.n_members design) Fun.id
  |> List.concat_map (fun slot ->
         let intervals =
           entries_on schedule slot
           |> List.map (fun (e : Schedule.entry) -> (e.start, e.finish, e.proc))
         in
         match overlapping intervals with
         | Some (a, b) ->
             [ D.error ~loc:(D.Member slot) ~rule
                 "processes %d and %d overlap" a b ]
         | None -> [])

(* sched/bus-overlap: under FCFS no two messages share the bus; under
   TDMA each member's transmissions are serialized and start inside a
   slot owned by the sender (fragmented occupancies of different members
   may legitimately interleave). *)
let check_bus_overlap subject =
  let rule = "sched/bus-overlap" in
  let _, design, schedule = context subject in
  let interval (m : Schedule.message) =
    (m.bus_start, m.bus_finish, m.edge.Task_graph.src)
  in
  match subject.Subject.bus with
  | Bus.Fcfs -> (
      match overlapping (List.map interval schedule.Schedule.messages) with
      | Some (a, b) ->
          [ D.error ~rule "messages from processes %d and %d overlap on the bus"
              a b ]
      | None -> [])
  | Bus.Tdma { slot_ms } ->
      let members = Design.n_members design in
      let per_member =
        List.init members (fun slot ->
            schedule.Schedule.messages
            |> List.filter (fun (m : Schedule.message) ->
                   slot_of design m.edge.Task_graph.src = Some slot)
            |> List.map interval)
      in
      let serialization =
        List.concat
          (List.mapi
             (fun slot intervals ->
               match overlapping intervals with
               | Some (a, b) ->
                   [ D.error ~loc:(D.Member slot) ~rule
                       "TDMA messages from processes %d and %d overlap" a b ]
               | None -> [])
             per_member)
      in
      let ownership =
        schedule.Schedule.messages
        |> List.concat_map (fun (m : Schedule.message) ->
               match slot_of design m.edge.Task_graph.src with
               | None -> []
               | Some sender ->
                   let index =
                     int_of_float
                       (Float.floor
                          ((m.bus_start +. Tolerance.time_eps_ms) /. slot_ms))
                   in
                   if index mod members <> sender then
                     [ D.error
                         ~loc:
                           (D.Message
                              { src = m.edge.Task_graph.src;
                                dst = m.edge.Task_graph.dst })
                         ~rule
                         "TDMA message starts at %g ms outside the sender's \
                          slot"
                         m.bus_start ]
                   else [])
      in
      serialization @ ownership

(* Re-derive the commit time of an entry under the declared policy.
   Conservative commits depend on the running per-node maximum WCET at
   placement time; placement order is recovered by sorting the slot's
   entries by start time (starts are strictly increasing per node). *)
let expected_commits problem design schedule slack slot =
  let m = mu problem in
  let k = float_of_int design.Design.reexecs.(slot) in
  let entries =
    entries_on schedule slot
    |> List.sort (fun (a : Schedule.entry) (b : Schedule.entry) ->
           compare (a.start, a.proc) (b.start, b.proc))
  in
  let running_max = ref 0.0 in
  List.map
    (fun (e : Schedule.entry) ->
      let t = e.finish -. e.start in
      running_max := Float.max !running_max t;
      let expected =
        match slack with
        | Scheduler.Shared | Scheduler.Checkpointed _ -> e.finish
        | Scheduler.Conservative -> e.finish +. (k *. (!running_max +. m))
        | Scheduler.Dedicated -> e.finish +. (k *. (t +. m))
        | Scheduler.Per_process budgets ->
            let b =
              if e.proc >= 0 && e.proc < Array.length budgets then
                float_of_int budgets.(e.proc)
              else 0.0
            in
            e.finish +. (b *. (t +. m))
      in
      (e, expected))
    entries

(* Worst-case completion of a slot, re-derived per policy from the raw
   entries: end-of-node shared slack sized by the largest execution
   (largest recovery segment under checkpointing), or the last commit
   when every process carries its own slack. *)
let expected_worst problem design schedule slack slot =
  let m = mu problem in
  let k = float_of_int design.Design.reexecs.(slot) in
  let entries = entries_on schedule slot in
  let nominal =
    List.fold_left
      (fun acc (e : Schedule.entry) -> Float.max acc e.finish)
      0.0 entries
  in
  match slack with
  | Scheduler.Shared | Scheduler.Conservative ->
      let max_exec =
        List.fold_left
          (fun acc (e : Schedule.entry) -> Float.max acc (e.finish -. e.start))
          0.0 entries
      in
      if max_exec = 0.0 then nominal else nominal +. (k *. (max_exec +. m))
  | Scheduler.Checkpointed { kappa; _ } ->
      let max_recovery =
        List.fold_left
          (fun acc (e : Schedule.entry) ->
            match wcet_of problem design e.proc with
            | Some w
              when e.proc >= 0 && e.proc < Array.length kappa
                   && kappa.(e.proc) >= 1 ->
                Float.max acc (w /. float_of_int kappa.(e.proc))
            | Some w -> Float.max acc w
            | None -> acc)
          0.0 entries
      in
      if max_recovery = 0.0 then nominal
      else nominal +. (k *. (max_recovery +. m))
  | Scheduler.Dedicated | Scheduler.Per_process _ ->
      List.fold_left
        (fun acc (e : Schedule.entry) -> Float.max acc e.commit)
        0.0 entries

(* sched/slack: the recorded nominal finish, per-entry commits and
   worst-case completion of every node agree with the policy's
   re-derived recovery-slack accounting. *)
let check_slack subject =
  let rule = "sched/slack" in
  let problem, design, schedule = context subject in
  let slack = subject.Subject.slack in
  List.init (Design.n_members design) Fun.id
  |> List.concat_map (fun slot ->
         if
           slot >= Array.length schedule.Schedule.node_finish
           || slot >= Array.length schedule.Schedule.node_worst
         then
           [ D.error ~loc:(D.Member slot) ~rule
               "schedule records no completion for this slot" ]
         else begin
           let loc = D.Member slot in
           let nominal =
             List.fold_left
               (fun acc (e : Schedule.entry) -> Float.max acc e.finish)
               0.0 (entries_on schedule slot)
           in
           let finish_ok =
             if
               not
                 (Tolerance.approx schedule.Schedule.node_finish.(slot) nominal)
             then
               [ D.error ~loc ~rule
                   "nominal completion %g ms, last execution finishes at %g ms"
                   schedule.Schedule.node_finish.(slot) nominal ]
             else []
           in
           let commits =
             expected_commits problem design schedule slack slot
             |> List.concat_map (fun ((e : Schedule.entry), expected) ->
                    if not (Tolerance.approx e.commit expected) then
                      [ D.error ~loc:(D.Process e.proc) ~rule
                          "commit %g ms, policy re-derivation gives %g ms"
                          e.commit expected ]
                    else [])
           in
           let worst = expected_worst problem design schedule slack slot in
           let worst_ok =
             if
               not (Tolerance.approx schedule.Schedule.node_worst.(slot) worst)
             then
               [ D.error ~loc ~rule
                   "worst-case completion %g ms, policy re-derivation gives \
                    %g ms"
                   schedule.Schedule.node_worst.(slot) worst ]
             else []
           in
           finish_ok @ commits @ worst_ok
         end)

(* sched/length: worst-case completions dominate nominal ones and the
   schedule length is exactly the latest worst-case completion. *)
let check_length subject =
  let rule = "sched/length" in
  let _, _, schedule = context subject in
  let acc = ref [] in
  Array.iteri
    (fun slot worst ->
      if slot < Array.length schedule.Schedule.node_finish then begin
        let nominal = schedule.Schedule.node_finish.(slot) in
        if Tolerance.lt worst nominal then
          acc :=
            D.error ~loc:(D.Member slot) ~rule
              "worst-case completion %g ms precedes the nominal %g ms" worst
              nominal
            :: !acc
      end)
    schedule.Schedule.node_worst;
  let max_worst =
    Array.fold_left Float.max 0.0 schedule.Schedule.node_worst
  in
  if not (Tolerance.approx schedule.Schedule.length max_worst) then
    acc :=
      D.error ~rule
        "schedule length %g ms is not the latest worst-case completion %g ms"
        schedule.Schedule.length max_worst
      :: !acc;
  List.rev !acc

(* sched/deadline: the guarantee the paper sells — the worst fault
   scenario still meets the deadline (with the shared explicit
   tolerance). *)
let check_deadline subject =
  let rule = "sched/deadline" in
  let problem, _, schedule = context subject in
  let deadline = problem.Problem.app.Application.deadline_ms in
  if not (Tolerance.leq schedule.Schedule.length deadline) then
    [ D.error ~rule "worst-case schedule length %g ms exceeds the %g ms \
                     deadline"
        schedule.Schedule.length deadline ]
  else []

let all =
  [ Rule.make ~id:"sched/entries"
      ~synopsis:"entry/process correspondence and mapping consistency"
      ~requires:Rule.Needs_schedule check_entries;
    Rule.make ~id:"sched/wcet"
      ~synopsis:"starts >= 0, durations >= WCET, commits >= finishes"
      ~requires:Rule.Needs_schedule check_wcet;
    Rule.make ~id:"sched/precedence"
      ~synopsis:"precedence through finishes, commits and bus messages"
      ~requires:Rule.Needs_schedule check_precedence;
    Rule.make ~id:"sched/node-overlap"
      ~synopsis:"per-node executions never overlap"
      ~requires:Rule.Needs_schedule check_node_overlap;
    Rule.make ~id:"sched/bus-overlap"
      ~synopsis:"bus arbitration respected (FCFS exclusive, TDMA slotted)"
      ~requires:Rule.Needs_schedule check_bus_overlap;
    Rule.make ~id:"sched/slack"
      ~synopsis:"recovery-slack accounting re-derived per policy"
      ~requires:Rule.Needs_schedule check_slack;
    Rule.make ~id:"sched/length"
      ~synopsis:"schedule length is the latest worst-case node completion"
      ~requires:Rule.Needs_schedule check_length;
    Rule.make ~id:"sched/deadline"
      ~synopsis:"worst-case schedule length meets the deadline"
      ~requires:Rule.Needs_schedule check_deadline ]
