(** Rules over an attached Pareto archive ([pareto/*]).

    The archive claims that every one of its points is a feasible
    design and that together they approximate the Pareto frontier;
    these rules re-derive both claims from the subject's problem and
    policies instead of trusting the producer: each point is
    re-validated, re-scheduled and re-analysed, the recorded objective
    values are compared against the recomputation, mutual
    non-domination is re-checked pairwise, and — when the subject
    carries the single-objective OPT cost — the archive's cheapest
    point is required to match it exactly. *)

val all : Rule.t list
