(** Verifier output: the diagnostics of one run plus which rules ran. *)

type t = {
  diagnostics : Diagnostic.t list;  (** in registry order. *)
  rules_run : string list;  (** ids of the rules that executed. *)
  rules_skipped : string list;
      (** ids skipped because the subject lacked a design or schedule. *)
}

val count : t -> Diagnostic.severity -> int

val errors : t -> Diagnostic.t list

val ok : t -> bool
(** No [Error]-severity diagnostic. *)

val fired_rules : t -> string list
(** Sorted, deduplicated ids of the rules that produced at least one
    diagnostic. *)

val to_text : t -> string
(** Human-readable multi-line report. *)

val to_json : t -> Ftes_util.Json.t
(** Machine-readable report: [ok], per-severity counts, rule lists and
    one object per diagnostic. *)
