let registry =
  Structural_rules.all @ Schedule_rules.all @ Sfp_rules.all @ Obs_rules.all
  @ Pareto_rules.all @ Analyze_rules.all @ Bnb_rules.all @ Serve_rules.all
  @ Whatif_rules.all @ Campaign_rules.all

let () =
  (* A duplicated id would make reports ambiguous; fail fast at link
     time rather than in a lint run. *)
  let ids = List.map (fun r -> r.Rule.id) registry in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Ftes_verify: duplicate rule ids in the registry"

let find id = List.find_opt (fun r -> r.Rule.id = id) registry

let run ?(rules = registry) subject =
  let run_rules, skipped =
    List.partition (fun r -> Rule.applicable subject r) rules
  in
  let diagnostics =
    List.concat_map (fun r -> r.Rule.check subject) run_rules
  in
  { Report.diagnostics;
    rules_run = List.map (fun r -> r.Rule.id) run_rules;
    rules_skipped = List.map (fun r -> r.Rule.id) skipped }

let except ids =
  List.filter (fun r -> not (List.mem r.Rule.id ids)) registry

let certify ?slack ?bus ?sfp_tables problem design schedule =
  run (Subject.of_schedule ?slack ?bus ?sfp_tables problem design schedule)
