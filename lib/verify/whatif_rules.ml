(* Rules over the what-if blocks of a captured response stream.

   A warm-started response carries a reuse report under
   telemetry.whatif (see DESIGN.md §15).  Like the serve rules, these
   re-derive the contract from the raw parsed JSON rather than
   trusting the encoder that produced it. *)

module Json = Ftes_util.Json
module D = Diagnostic
module Reuse = Ftes_whatif.Reuse
module Delta = Ftes_whatif.Delta

let responses_exn subject =
  match subject.Subject.responses with
  | Some rs -> rs
  | None -> invalid_arg "verifier: whatif rule run without a response stream"

let str key json = Result.bind (Json.member key json) Json.to_string_value

let label i json =
  match str "id" json with
  | Ok id when id <> "" -> Printf.sprintf "response %d (id %S)" i id
  | _ -> Printf.sprintf "response %d" i

let reuse_block json =
  match Json.member "telemetry" json with
  | Error _ -> None
  | Ok tel -> (
      match Json.member "whatif" tel with Error _ -> None | Ok r -> Some r)

(* whatif/reuse: every reuse block decodes, names a known delta class,
   and its counters are internally consistent — non-negative, replayed
   prefix within the trail, witnesses only re-checked when the
   pre-flight was actually reused. *)
let check_reuse subject =
  let rule = "whatif/reuse" in
  List.concat
    (List.mapi
       (fun i json ->
         let who = label i json in
         match reuse_block json with
         | None -> []
         | Some block -> (
             match Reuse.of_json block with
             | Error e ->
                 [ D.error ~rule "%s: undecodable reuse block: %s" who e ]
             | Ok r ->
                 let known =
                   if List.mem r.Reuse.delta_class Delta.class_names then []
                   else
                     [ D.error ~rule "%s: unknown delta class %S" who
                         r.Reuse.delta_class ]
                 in
                 let negative =
                   List.filter_map
                     (fun (name, v) ->
                       if v < 0 then
                         Some
                           (D.error ~rule "%s: %s is negative (%d)" who name v)
                       else None)
                     [ ("sfp.kept", r.Reuse.sfp_kept);
                       ("sfp.dropped", r.Reuse.sfp_dropped);
                       ("evals.kept", r.Reuse.evals_kept);
                       ("evals.dropped", r.Reuse.evals_dropped);
                       ("probes.kept", r.Reuse.probes_kept);
                       ("probes.dropped", r.Reuse.probes_dropped);
                       ("steps.replayed", r.Reuse.steps_replayed);
                       ("steps.total", r.Reuse.steps_total);
                       ("witnesses_rechecked", r.Reuse.witnesses_rechecked) ]
                 in
                 let steps =
                   if r.Reuse.steps_replayed > r.Reuse.steps_total then
                     [ D.error ~rule
                         "%s: replayed prefix (%d) longer than the trail (%d)"
                         who r.Reuse.steps_replayed r.Reuse.steps_total ]
                   else []
                 in
                 let witnesses =
                   if
                     r.Reuse.witnesses_rechecked > 0
                     && not r.Reuse.preflight_reused
                   then
                     [ D.error ~rule
                         "%s: %d witnesses re-checked on a run that did not \
                          reuse its pre-flight"
                         who r.Reuse.witnesses_rechecked ]
                   else []
                 in
                 known @ negative @ steps @ witnesses))
       (responses_exn subject))

(* whatif/verdict: a warm-started response still tells the optimize
   story — verdict feasible or no-solution, and a feasible payload
   carries the explored count the bit-identity property pins. *)
let check_verdict subject =
  let rule = "whatif/verdict" in
  List.concat
    (List.mapi
       (fun i json ->
         let who = label i json in
         match reuse_block json with
         | None -> []
         | Some _ ->
             let verdict =
               match str "verdict" json with
               | Ok ("feasible" | "no-solution") -> []
               | Ok v ->
                   [ D.error ~rule
                       "%s: warm-started response with verdict %S (want \
                        feasible or no-solution)"
                       who v ]
               | Error e -> [ D.error ~rule "%s: %s" who e ]
             in
             let explored =
               match (str "verdict" json, Json.member "payload" json) with
               | Ok "feasible", Ok payload -> (
                   match
                     Result.bind (Json.member "explored" payload) Json.to_int
                   with
                   | Ok n when n >= 1 -> []
                   | Ok n ->
                       [ D.error ~rule
                           "%s: feasible warm payload explored %d \
                            architectures (want >= 1)"
                           who n ]
                   | Error e -> [ D.error ~rule "%s: %s" who e ])
               | _ -> []
             in
             verdict @ explored)
       (responses_exn subject))

let all =
  [ Rule.make ~id:"whatif/reuse"
      ~synopsis:"warm-start reuse blocks are well-formed and consistent"
      ~requires:Rule.Needs_responses check_reuse;
    Rule.make ~id:"whatif/verdict"
      ~synopsis:"warm-started responses carry optimize verdicts and explored \
                 counts"
      ~requires:Rule.Needs_responses check_verdict ]
