(** The verifier front door: rule registry and runner.

    The registry holds every rule of {!Structural_rules},
    {!Schedule_rules} and {!Sfp_rules}.  A run executes the applicable
    subset against a {!Subject.t} and returns a {!Report.t}; rules that
    need a design or a schedule the subject lacks are recorded as
    skipped rather than failed. *)

val registry : Rule.t list
(** All rules, in execution order. *)

val find : string -> Rule.t option
(** Look a rule up by id. *)

val except : string list -> Rule.t list
(** The registry without the given ids — e.g. to verify a schedule's
    soundness while tolerating a missed deadline. *)

val run : ?rules:Rule.t list -> Subject.t -> Report.t
(** Run (a subset of) the registry against a subject. *)

val certify :
  ?slack:Ftes_sched.Scheduler.slack_mode ->
  ?bus:Ftes_sched.Bus.policy ->
  ?sfp_tables:Ftes_sfp.Sfp.node_analysis array ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  Ftes_sched.Schedule.t ->
  Report.t
(** Full-registry run on a complete triple.  When the producer used
    memoized SFP tables, pass them as [sfp_tables] so the SFP-cache
    contract rule can check them against fresh recomputation; without
    them that rule is recorded as skipped. *)
