module Json = Ftes_util.Json

type t = {
  diagnostics : Diagnostic.t list;
  rules_run : string list;
  rules_skipped : string list;
}

let count t severity =
  List.length
    (List.filter (fun d -> d.Diagnostic.severity = severity) t.diagnostics)

let errors t =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) t.diagnostics

let ok t = errors t = []

let to_text t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "verifier: %d rules run, %d skipped — %d error(s), %d warning(s), %d info\n"
       (List.length t.rules_run)
       (List.length t.rules_skipped)
       (count t Diagnostic.Error) (count t Diagnostic.Warn)
       (count t Diagnostic.Info));
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "  %a\n" Diagnostic.pp d))
    t.diagnostics;
  if t.diagnostics = [] then Buffer.add_string buf "  all checks passed\n";
  Buffer.contents buf

let location_to_json (loc : Diagnostic.location) =
  let kind = Json.String (Diagnostic.location_name loc) in
  match loc with
  | Diagnostic.Global -> Json.Object [ ("kind", kind) ]
  | Diagnostic.Process p ->
      Json.Object [ ("kind", kind); ("process", Json.Number (float_of_int p)) ]
  | Diagnostic.Member m ->
      Json.Object [ ("kind", kind); ("member", Json.Number (float_of_int m)) ]
  | Diagnostic.Edge { src; dst } | Diagnostic.Message { src; dst } ->
      Json.Object
        [ ("kind", kind);
          ("src", Json.Number (float_of_int src));
          ("dst", Json.Number (float_of_int dst)) ]

let diagnostic_to_json (d : Diagnostic.t) =
  Json.Object
    [ ("rule", Json.String d.Diagnostic.rule);
      ("severity", Json.String (Diagnostic.severity_name d.Diagnostic.severity));
      ("location", location_to_json d.Diagnostic.location);
      ("detail", Json.String d.Diagnostic.detail) ]

let to_json t =
  Json.Object
    [ ("ok", Json.Bool (ok t));
      ("errors", Json.Number (float_of_int (count t Diagnostic.Error)));
      ("warnings", Json.Number (float_of_int (count t Diagnostic.Warn)));
      ("infos", Json.Number (float_of_int (count t Diagnostic.Info)));
      ("rules_run", Json.List (List.map (fun id -> Json.String id) t.rules_run));
      ( "rules_skipped",
        Json.List (List.map (fun id -> Json.String id) t.rules_skipped) );
      ("diagnostics", Json.List (List.map diagnostic_to_json t.diagnostics)) ]

let fired_rules t =
  List.sort_uniq compare (List.map (fun d -> d.Diagnostic.rule) t.diagnostics)
