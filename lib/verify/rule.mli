(** Named, self-describing checks of the verifier registry. *)

type requires =
  | Problem_only  (** runs on every subject. *)
  | Needs_design  (** skipped unless the subject carries a design. *)
  | Needs_schedule  (** skipped unless design and schedule are present. *)
  | Needs_sfp_tables
      (** skipped unless design and memoized SFP tables are present. *)
  | Needs_metrics
      (** skipped unless the subject carries a metrics snapshot. *)
  | Needs_archive
      (** skipped unless the subject carries a Pareto archive. *)
  | Needs_certificate
      (** skipped unless the subject carries a pre-flight
          certificate. *)
  | Needs_bnb_certificate
      (** skipped unless the subject carries a branch-and-bound
          optimality certificate. *)
  | Needs_responses
      (** skipped unless the subject carries a design-service response
          stream. *)
  | Needs_campaign
      (** skipped unless the subject carries campaign documents. *)

type t = {
  id : string;  (** stable identifier, e.g. ["sched/precedence"]. *)
  synopsis : string;  (** one-line description for catalogues. *)
  requires : requires;
  check : Subject.t -> Diagnostic.t list;
      (** returns the diagnostics found — the empty list means the rule
          passed. *)
}

val make :
  id:string ->
  synopsis:string ->
  requires:requires ->
  (Subject.t -> Diagnostic.t list) ->
  t

val applicable : Subject.t -> t -> bool
(** Whether the subject carries enough of the triple for this rule. *)
