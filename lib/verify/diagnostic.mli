(** Structured findings of the static verifier.

    Each diagnostic names the rule that produced it, carries a severity
    and points at a location in the verified artifact (a process, an
    architecture member slot, a task-graph edge or a bus message). *)

type severity = Error | Warn | Info

val severity_name : severity -> string
(** ["error"], ["warn"] or ["info"]. *)

type location =
  | Global
  | Process of int  (** process index. *)
  | Member of int  (** architecture member slot. *)
  | Edge of { src : int; dst : int }  (** task-graph edge. *)
  | Message of { src : int; dst : int }  (** bus message of an edge. *)

val location_name : location -> string

type t = {
  rule : string;  (** id of the rule that fired. *)
  severity : severity;
  location : location;
  detail : string;  (** human-readable explanation. *)
}

val make : ?loc:location -> severity -> rule:string -> string -> t

val error : ?loc:location -> rule:string -> ('a, unit, string, t) format4 -> 'a

val warn : ?loc:location -> rule:string -> ('a, unit, string, t) format4 -> 'a

val info : ?loc:location -> rule:string -> ('a, unit, string, t) format4 -> 'a

val pp_location : Format.formatter -> location -> unit

val pp : Format.formatter -> t -> unit
