(** Closed-form bounds on the node failure probability.

    The exact analysis of {!Sfp} evaluates formula (4) through the
    complete homogeneous symmetric polynomials of the process failure
    probabilities.  This module provides the classical first-order
    alternative

    {v Pr(f > k; Njh)  <=  S^(k+1) / (1 - S),     S = sum of pijh v}

    obtained from [h_f <= S^f] and the geometric tail bound.  It is what
    a designer would use on the back of an envelope; the ablation
    experiment quantifies how many extra re-executions (and how much
    schedule slack) the bound costs compared to the exact analysis. *)

val sum_check : float array -> float
(** [sum_check p] is S = sum of the entries; the bounds below require
    [S < 1]. *)

val pr_exceeds_upper : float array -> k:int -> float
(** Upper bound on formula (4).  Returns [1.] when [S >= 1] (the bound
    degenerates).  Raises [Invalid_argument] on negative [k] or on
    entries outside [\[0, 1)]. *)

val required_k : float array -> budget:float -> kmax:int -> int option
(** [required_k p ~budget ~kmax] is the smallest [k <= kmax] whose
    {!pr_exceeds_upper} does not exceed [budget], if any.  Found by
    binary search — the bound is monotone in [k]. *)

val required_k_scan : float array -> budget:float -> kmax:int -> int option
(** Retained linear-scan reference of {!required_k}; the test-suite
    asserts agreement between the two on random probability vectors. *)

val is_sound : float array -> k:int -> bool
(** [is_sound p ~k] checks the defining inequality against the exact
    analysis — used by the test-suite, exported for convenience. *)

(** {2 Exact-analysis admissibility}

    The closed-form bound above over-approximates the exceedance, so it
    can only prove a re-execution count {e sufficient} — never that an
    assignment is dead.  Exclusion arguments (the pre-flight analyzer of
    {!Ftes_analyze}, the optimizer's pruning) therefore run on the exact
    grain-rounded analysis of {!Sfp} instead, through the two entries
    below. *)

val admissible_budget : kmax:int -> Ftes_model.Application.t -> float
(** {!Sfp.max_admissible_failure} widened by the analysis slop: the
    pessimistic grain rounding can inflate a computed exceedance by up
    to one grain per rounded term (at most [2 * (kmax + 2)] of them),
    and the reliability check itself contributes a few ulps through its
    [pow]/product chain.  Any node of a design that meets the
    reliability goal with [k <= kmax] re-executions has a computed
    exceedance within this budget — so an assignment whose exceedance
    exceeds it is provably dead, and the least [k] within it
    lower-bounds any feasible re-execution count. *)

val required_k_exact : float array -> budget:float -> kmax:int -> int option
(** [required_k_exact p ~budget ~kmax] is the smallest [k <= kmax]
    whose {e exact} exceedance {!Sfp.pr_exceeds} does not exceed
    [budget], if any ([None] means even [kmax] re-executions leave the
    node above the budget).  The rounded exceedance is exactly
    non-increasing in [k] (the recovery partial sums only grow and the
    directed rounding is monotone), so the answer is bisected. *)

val cost_lower_bound :
  ?kmax:int -> ?members:int array -> Ftes_model.Problem.t -> float
(** A reliability-only lower bound on the cost of any feasible
    architecture: every process must be hosted by some node whose
    hardening level admits the reliability goal within [kmax]
    (default {!Sfp.default_kmax}) re-executions, so the architecture
    pays at least the cheapest such h-version for the most demanding
    process — [max] over processes of [min] over admissible [(j, h)] of
    [Cjh].  Admissibility is {!required_k_exact} at
    {!admissible_budget}, which never excludes a workable assignment.
    Returns [infinity] when some process has no admissible pair (no
    feasible design exists at all).

    [members] restricts the quantification to designs whose
    architecture draws only from the given library subset — the
    branch-and-bound of [Ftes_bnb] prunes a subtree whenever the bound
    over its reachable members already exceeds the incumbent.  Raises
    [Invalid_argument] on an out-of-range member. *)
