(** Closed-form bounds on the node failure probability.

    The exact analysis of {!Sfp} evaluates formula (4) through the
    complete homogeneous symmetric polynomials of the process failure
    probabilities.  This module provides the classical first-order
    alternative

    {v Pr(f > k; Njh)  <=  S^(k+1) / (1 - S),     S = sum of pijh v}

    obtained from [h_f <= S^f] and the geometric tail bound.  It is what
    a designer would use on the back of an envelope; the ablation
    experiment quantifies how many extra re-executions (and how much
    schedule slack) the bound costs compared to the exact analysis. *)

val sum_check : float array -> float
(** [sum_check p] is S = sum of the entries; the bounds below require
    [S < 1]. *)

val pr_exceeds_upper : float array -> k:int -> float
(** Upper bound on formula (4).  Returns [1.] when [S >= 1] (the bound
    degenerates).  Raises [Invalid_argument] on negative [k] or on
    entries outside [\[0, 1)]. *)

val required_k : float array -> budget:float -> kmax:int -> int option
(** [required_k p ~budget ~kmax] is the smallest [k <= kmax] whose
    {!pr_exceeds_upper} does not exceed [budget], if any.  Found by
    binary search — the bound is monotone in [k]. *)

val required_k_scan : float array -> budget:float -> kmax:int -> int option
(** Retained linear-scan reference of {!required_k}; the test-suite
    asserts agreement between the two on random probability vectors. *)

val is_sound : float array -> k:int -> bool
(** [is_sound p ~k] checks the defining inequality against the exact
    analysis — used by the test-suite, exported for convenience. *)
