module Rounding = Ftes_util.Rounding

(* Per-node exceedance table: v.(k) accumulates the recovery terms in
   the same order as repeated [Sfp.pr_exceeds] calls (Pr(0), then
   Pr(1) .. Pr(k) each rounded down), so every entry is bit-identical
   to the from-scratch formula (4). *)
let exceed_vector analysis =
  let kmax = Sfp.kmax analysis in
  let v = Array.make (kmax + 1) 0.0 in
  let recovered = ref (Sfp.pr_zero analysis) in
  v.(0) <- Rounding.clamp01 (Rounding.up (1.0 -. !recovered));
  for f = 1 to kmax do
    recovered := !recovered +. Sfp.pr_faults analysis ~f;
    v.(f) <- Rounding.clamp01 (Rounding.up (1.0 -. !recovered))
  done;
  v

(* Smallest k with v.(k) = 0. (the set is upward closed: the recovered
   sum is non-decreasing in k, so once the rounded tail clamps to zero
   it stays there), or kmax + 1 when the tail never vanishes.  The
   closed-form [Bound.required_k] seeds the bisection: the analytic cap
   usually lands within one probe of the exact saturation point, and a
   wrong seed only narrows the bracket, never the answer. *)
let saturation_of analysis v =
  let kmax = Sfp.kmax analysis in
  if v.(kmax) <> 0.0 then kmax + 1
  else begin
    let lo = ref 0 and hi = ref kmax in
    (match
       Bound.required_k analysis.Sfp.probs ~budget:Rounding.grain ~kmax
     with
    | Some seed -> if v.(seed) = 0.0 then hi := seed else lo := seed + 1
    | None -> ());
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v.(mid) = 0.0 then hi := mid else lo := mid + 1
    done;
    !lo
  end

type node_vectors = { exceed : float array; sat : int }

let node_vectors analysis =
  let exceed = exceed_vector analysis in
  { exceed; sat = saturation_of analysis exceed }

type t = { exceed : float array array; sat : int array }

let make vectors =
  { exceed = Array.map (fun (nv : node_vectors) -> nv.exceed) vectors;
    sat = Array.map (fun (nv : node_vectors) -> nv.sat) vectors }

let n_members t = Array.length t.exceed

let saturated t ~member ~k = k >= t.sat.(member)

(* The reference fold of formula (5) multiplies the per-node survival
   terms left to right starting from 1.0; every variant below preserves
   that exact operation order, which is the bit-identity argument. *)
let system_failure t ~k =
  if Array.length k <> Array.length t.exceed then
    invalid_arg "Incremental.system_failure: length mismatch";
  let survive = ref 1.0 in
  Array.iteri
    (fun j v -> survive := !survive *. (1.0 -. v.(k.(j))))
    t.exceed;
  Rounding.clamp01 (Rounding.up (1.0 -. !survive))

let prefix_into t ~k prefix =
  let members = Array.length t.exceed in
  if Array.length k <> members then
    invalid_arg "Incremental.prefix_into: length mismatch";
  if Array.length prefix < members + 1 then
    invalid_arg "Incremental.prefix_into: prefix too short";
  prefix.(0) <- 1.0;
  for j = 0 to members - 1 do
    prefix.(j + 1) <- prefix.(j) *. (1.0 -. t.exceed.(j).(k.(j)))
  done

let candidate_failure t ~k ~prefix ~j =
  let members = Array.length t.exceed in
  let survive = ref (prefix.(j) *. (1.0 -. t.exceed.(j).(k.(j) + 1))) in
  for i = j + 1 to members - 1 do
    survive := !survive *. (1.0 -. t.exceed.(i).(k.(i)))
  done;
  Rounding.clamp01 (Rounding.up (1.0 -. !survive))
