(** System Failure Probability analysis (Appendix A).

    Connects the hardware redundancy (hardening levels, which determine
    the process failure probabilities [pijh]) with the software
    redundancy (the maximum number [kj] of re-executions on node [Nj]).

    For one node with process failure probabilities [p = p_1 .. p_n]:

    - formula (1): [Pr(0)] = prod (1 - p_i), rounded down;
    - formulae (2)-(3): [Pr(f)] = [Pr(0)] * h_f(p) where h_f sums the
      products of every multiset of [f] faults over the [n] processes
      (complete homogeneous symmetric polynomial);
    - formula (4): [Pr(f > k)] = 1 - Pr(0) - sum_{f=1..k} Pr(f),
      rounded up.

    Formula (5) combines the per-node exceedance probabilities and
    formula (6) checks the per-hour reliability goal.  All rounding is
    directed so the analysis is pessimistic (never reports a system as
    more reliable than it is). *)

type node_analysis = {
  probs : float array;  (** the node's process failure probabilities. *)
  kmax : int;
  pr0 : float;  (** formula (1), rounded down. *)
  homogeneous : float array;  (** h_0 .. h_kmax of [probs]. *)
}
(** Cached per-node analysis: the probability vector and its h_f table
    up to a re-execution bound, so that exploring different [k] values
    is O(1) per query.  The representation is exposed so that the
    static verifier can re-check memoized tables field by field (and so
    that its mutation tests can corrupt them); construct values only
    through {!node_analysis}. *)

val default_kmax : int
(** Default cap on explored re-executions per node (12; the paper's
    examples never exceed 7). *)

val node_analysis : ?kmax:int -> float array -> node_analysis
(** [node_analysis p] precomputes the analysis for a node whose mapped
    processes fail with probabilities [p].  Raises [Invalid_argument] if
    some entry is not a probability in [\[0, 1)]. *)

val kmax : node_analysis -> int

val pr_zero : node_analysis -> float
(** Formula (1), rounded down.  [1.] for a node with no processes. *)

val pr_faults : node_analysis -> f:int -> float
(** Formula (3): probability of recovering from exactly [f] faults.
    Raises [Invalid_argument] if [f < 0] or [f > kmax]. *)

val pr_exceeds : node_analysis -> k:int -> float
(** Formula (4): probability that more than [k] faults occur (node
    failure with [k] re-executions), rounded up and clamped to
    [\[0, 1\]]. *)

val pr_exceeds_enumerated : float array -> k:int -> float
(** Reference implementation of formula (4) by explicit enumeration of
    the fault-scenario multisets of formula (2).  Exponential in [k];
    exists to cross-check {!pr_exceeds} in the test-suite. *)

val system_failure_per_iteration : node_analysis array -> k:int array -> float
(** Formula (5): probability that at least one node exceeds its
    re-execution budget during one application iteration, rounded up. *)

val reliability :
  per_iteration_failure:float -> iterations_per_hour:float -> float
(** Formula (6) left-hand side: [(1 - pr)^ceil(iterations)]. *)

(** Verdict of the analysis for a complete design. *)
type verdict = {
  per_iteration_failure : float;
  reliability_per_hour : float;
  goal : float;  (** rho = 1 - gamma. *)
  meets_goal : bool;
}

val margin_cap : float
(** Saturation bound (300 decades) of {!log10_margin}: the magnitude at
    which the logarithmic margin is clamped, keeping archive objectives
    finite even for a zero failure probability. *)

val max_admissible_failure : Ftes_model.Application.t -> float
(** The largest per-iteration failure probability that still meets
    formula (6): [1 - rho^(1/ceil(iterations per hour))].  A design
    meets the reliability goal iff its per-iteration failure does not
    exceed this threshold. *)

val log10_margin :
  Ftes_model.Application.t -> per_iteration_failure:float -> float
(** Reliability margin in -log10 space:
    [log10 (max_admissible_failure / per_iteration_failure)] — how many
    decades the design's per-iteration failure sits {e below} the
    admissible maximum.  Non-negative exactly when the goal is met,
    clamped to [±]{!margin_cap} (and to the cap for a zero failure
    probability).  This is the third archive objective of
    {!Ftes_pareto}. *)

val analysis_kmax : Ftes_model.Design.t -> member:int -> int
(** The table bound {!evaluate} uses for one member:
    [max default_kmax reexecs.(member)]. *)

val analyses_for :
  Ftes_model.Problem.t -> Ftes_model.Design.t -> node_analysis array
(** The per-member analyses {!evaluate} is defined over, one per
    architecture slot at {!analysis_kmax}. *)

val evaluate_analyses :
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  analyses:node_analysis array ->
  verdict
(** {!evaluate} over externally supplied (typically memoized) member
    analyses.  The caller promises [analyses] equals
    {!analyses_for}[ problem design]; {!Ftes_par.Sfp_cache} guarantees
    this by construction.  Raises [Invalid_argument] on a slot-count
    mismatch. *)

val evaluate : Ftes_model.Problem.t -> Ftes_model.Design.t -> verdict
(** Full-system check of formula (6) for a design (architecture,
    levels, mapping, and re-execution counts). *)

val meets_goal : Ftes_model.Problem.t -> Ftes_model.Design.t -> bool
(** [meets_goal p d] = [(evaluate p d).meets_goal]. *)
