module Rounding = Ftes_util.Rounding
module Symmetric = Ftes_util.Symmetric
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Application = Ftes_model.Application

type node_analysis = {
  probs : float array;
  kmax : int;
  pr0 : float; (* formula (1), rounded down *)
  homogeneous : float array; (* h_0 .. h_kmax of [probs] *)
}

let default_kmax = 12

let c_node_tables = Ftes_obs.Metrics.counter "sfp.node_tables"

let c_enumerations = Ftes_obs.Metrics.counter "sfp.enumerations"

let c_verdicts = Ftes_obs.Metrics.counter "sfp.verdicts"

let node_analysis ?(kmax = default_kmax) probs =
  if kmax < 0 then invalid_arg "Sfp.node_analysis: negative kmax";
  Array.iter
    (fun p ->
      if not (Rounding.is_probability p) || p >= 1.0 then
        invalid_arg "Sfp.node_analysis: probabilities must lie in [0, 1)")
    probs;
  Ftes_obs.Metrics.incr c_node_tables;
  Ftes_obs.Span.with_ ~name:"sfp/node_table" (fun () ->
      let pr0 =
        Rounding.down
          (Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 probs)
      in
      let homogeneous = Symmetric.complete_homogeneous probs kmax in
      { probs = Array.copy probs; kmax; pr0; homogeneous })

let kmax t = t.kmax

let pr_zero t = t.pr0

let pr_faults t ~f =
  if f < 0 || f > t.kmax then invalid_arg "Sfp.pr_faults: f out of range";
  Rounding.down (t.pr0 *. t.homogeneous.(f))

let pr_exceeds t ~k =
  if k < 0 || k > t.kmax then invalid_arg "Sfp.pr_exceeds: k out of range";
  let recovered = ref t.pr0 in
  for f = 1 to k do
    recovered := !recovered +. pr_faults t ~f
  done;
  Rounding.clamp01 (Rounding.up (1.0 -. !recovered))

let pr_exceeds_enumerated probs ~k =
  if k < 0 then invalid_arg "Sfp.pr_exceeds_enumerated: negative k";
  Ftes_obs.Metrics.incr c_enumerations;
  let n = Array.length probs in
  let pr0 =
    Rounding.down (Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 probs)
  in
  let recovered = ref pr0 in
  for f = 1 to k do
    (* Formula (2) summed over every f-fault multiset: the scenario
       probability is Pr(0) times the product of the failing processes'
       probabilities, with multiplicity. *)
    let sum =
      Symmetric.fold_multisets ~n ~f ~init:0.0 (fun acc m ->
          let product = ref 1.0 in
          Array.iteri
            (fun i times ->
              for _ = 1 to times do
                product := !product *. probs.(i)
              done)
            m;
          acc +. !product)
    in
    recovered := !recovered +. Rounding.down (pr0 *. sum)
  done;
  Rounding.clamp01 (Rounding.up (1.0 -. !recovered))

let system_failure_per_iteration analyses ~k =
  if Array.length analyses <> Array.length k then
    invalid_arg "Sfp.system_failure_per_iteration: length mismatch";
  let survive = ref 1.0 in
  Array.iteri
    (fun j a -> survive := !survive *. (1.0 -. pr_exceeds a ~k:k.(j)))
    analyses;
  Rounding.clamp01 (Rounding.up (1.0 -. !survive))

let reliability ~per_iteration_failure ~iterations_per_hour =
  if per_iteration_failure >= 1.0 then 0.0
  else begin
    let iterations = Float.ceil iterations_per_hour in
    (* exp (n * log1p (-p)) is (1 - p)^n without intermediate
       cancellation for the tiny p this analysis produces. *)
    exp (iterations *. Float.log1p (-.per_iteration_failure))
  end

type verdict = {
  per_iteration_failure : float;
  reliability_per_hour : float;
  goal : float;
  meets_goal : bool;
}

let margin_cap = 300.0

let max_admissible_failure app =
  (* Invert formula (6): (1 - p)^ceil(N) >= rho  <=>  p <= 1 - rho^(1/ceil N).
     expm1/log keep precision for rho close to 1 (gamma tiny). *)
  let iterations = Float.ceil (Application.iterations_per_hour app) in
  let rho = Application.reliability_goal app in
  -.Float.expm1 (Float.log rho /. iterations)

let log10_margin app ~per_iteration_failure =
  let p_max = max_admissible_failure app in
  if per_iteration_failure <= 0.0 then margin_cap
  else begin
    let m = Float.log10 (p_max /. per_iteration_failure) in
    if m > margin_cap then margin_cap
    else if m < -.margin_cap then -.margin_cap
    else m
  end

let analysis_kmax design ~member =
  max default_kmax design.Design.reexecs.(member)

let analyses_for problem design =
  Array.init (Design.n_members design) (fun member ->
      node_analysis
        ~kmax:(analysis_kmax design ~member)
        (Design.pfail_vector problem design ~member))

let evaluate_analyses problem design ~analyses =
  if Array.length analyses <> Design.n_members design then
    invalid_arg "Sfp.evaluate_analyses: one analysis per member expected";
  Ftes_obs.Metrics.incr c_verdicts;
  let per_iteration_failure =
    system_failure_per_iteration analyses ~k:design.Design.reexecs
  in
  let app = problem.Problem.app in
  let reliability_per_hour =
    reliability ~per_iteration_failure
      ~iterations_per_hour:(Application.iterations_per_hour app)
  in
  let goal = Application.reliability_goal app in
  { per_iteration_failure; reliability_per_hour; goal;
    meets_goal = reliability_per_hour >= goal }

let evaluate problem design =
  evaluate_analyses problem design ~analyses:(analyses_for problem design)

let meets_goal problem design = (evaluate problem design).meets_goal
