module Rounding = Ftes_util.Rounding

let sum_check p = Array.fold_left ( +. ) 0.0 p

let validate p k =
  if k < 0 then invalid_arg "Bound: negative k";
  Array.iter
    (fun x ->
      if not (Rounding.is_probability x) || x >= 1.0 then
        invalid_arg "Bound: probabilities must lie in [0, 1)")
    p

let pr_exceeds_upper p ~k =
  validate p k;
  let s = sum_check p in
  if s >= 1.0 then 1.0
  else if s = 0.0 then 0.0
  else
    (* Same pessimistic grain rounding as the exact analysis, so the
       bound stays above it even at the rounding resolution. *)
    Rounding.clamp01
      (Rounding.up ((s ** float_of_int (k + 1)) /. (1.0 -. s)))

let required_k_scan p ~budget ~kmax =
  if kmax < 0 then invalid_arg "Bound.required_k: negative kmax";
  let rec search k =
    if k > kmax then None
    else if pr_exceeds_upper p ~k <= budget then Some k
    else search (k + 1)
  in
  search 0

(* [pr_exceeds_upper] is non-increasing in [k] (S^(k+1) shrinks for
   S < 1 and both degenerate branches are constant), so the predicate
   "bound <= budget" is monotone and the smallest satisfying [k] can be
   bisected instead of scanned. *)
let required_k p ~budget ~kmax =
  if kmax < 0 then invalid_arg "Bound.required_k: negative kmax";
  if pr_exceeds_upper p ~k:kmax > budget then None
  else begin
    let lo = ref 0 and hi = ref kmax in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if pr_exceeds_upper p ~k:mid <= budget then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(* The slop has two sources.  Grain rounding: [Sfp.node_analysis] and
   [Sfp.pr_exceeds] round at most [2 * (kmax + 2)] intermediate terms
   (pr0, the recovery terms, the final clamp), each pessimistically by
   less than one grain, so two exceedances of nested probability
   vectors computed through the pipeline can disagree by that many
   grains even though the underlying values are ordered.  Float crumbs:
   combining per-node exceedances into the per-iteration failure and
   raising it to the iteration count costs a few ulps, absorbed by the
   absolute 1e-14.  Widening the admissible threshold by the slop makes
   every test built on it one-sided: a node that really meets the goal
   is always within budget. *)
let admissible_budget ~kmax app =
  if kmax < 0 then invalid_arg "Bound.admissible_budget: negative kmax";
  Sfp.max_admissible_failure app
  +. (float_of_int (2 * (kmax + 2)) *. Rounding.grain)
  +. 1e-14

(* [Sfp.pr_exceeds] is exactly non-increasing in [k]: the recovery
   partial sums add non-negative terms (monotone in IEEE arithmetic),
   and the subtraction, multiplication by pr0 and directed rounding are
   all monotone, so the predicate "exceedance <= budget" can be
   bisected just like the closed-form variant. *)
let required_k_exact p ~budget ~kmax =
  if kmax < 0 then invalid_arg "Bound.required_k_exact: negative kmax";
  let analysis = Sfp.node_analysis ~kmax p in
  if Sfp.pr_exceeds analysis ~k:kmax > budget then None
  else begin
    let lo = ref 0 and hi = ref kmax in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Sfp.pr_exceeds analysis ~k:mid <= budget then hi := mid
      else lo := mid + 1
    done;
    Some !lo
  end

(* Any feasible design hosts process [i] on some member whose h-version
   admits the goal within kmax re-executions — its singleton exceedance
   is below the node's (adding processes only adds fault scenarios), so
   the architecture pays at least the cheapest admissible version for
   the most demanding process.  Restricting [members] restricts the
   designs the bound quantifies over: designs whose architecture is a
   subset of [members]. *)
let cost_lower_bound ?(kmax = Sfp.default_kmax) ?members
    (problem : Ftes_model.Problem.t) =
  let budget = admissible_budget ~kmax problem.Ftes_model.Problem.app in
  let nodes =
    match members with
    | Some m -> m
    | None ->
        Array.init (Ftes_model.Problem.n_library problem) (fun j -> j)
  in
  Array.iter
    (fun node ->
      if node < 0 || node >= Ftes_model.Problem.n_library problem then
        invalid_arg "Bound.cost_lower_bound: member outside the library")
    nodes;
  let bound = ref 0.0 in
  for proc = 0 to Ftes_model.Problem.n_processes problem - 1 do
    let cheapest = ref infinity in
    Array.iter
      (fun node ->
        for level = 1 to Ftes_model.Problem.levels problem node do
          let pf = Ftes_model.Problem.pfail problem ~node ~level ~proc in
          if required_k_exact [| pf |] ~budget ~kmax <> None then
            cheapest :=
              Float.min !cheapest
                (Ftes_model.Problem.cost problem ~node ~level)
        done)
      nodes;
    bound := Float.max !bound !cheapest
  done;
  !bound

(* Soundness is a statement about the underlying probabilities, so it is
   checked against the unrounded exact value: the grain-rounded analysis
   of [Sfp] floors each recovery term and can therefore sit above the
   bound by a few grains on tiny probabilities. *)
let is_sound p ~k =
  let h = Ftes_util.Symmetric.complete_homogeneous p (k + 1) in
  let pr0 = Array.fold_left (fun acc x -> acc *. (1.0 -. x)) 1.0 p in
  let recovered = ref 0.0 in
  for f = 0 to k do
    recovered := !recovered +. (pr0 *. h.(f))
  done;
  let exact_raw = Float.max 0.0 (1.0 -. !recovered) in
  pr_exceeds_upper p ~k >= exact_raw -. 1e-15
