module Rounding = Ftes_util.Rounding

let sum_check p = Array.fold_left ( +. ) 0.0 p

let validate p k =
  if k < 0 then invalid_arg "Bound: negative k";
  Array.iter
    (fun x ->
      if not (Rounding.is_probability x) || x >= 1.0 then
        invalid_arg "Bound: probabilities must lie in [0, 1)")
    p

let pr_exceeds_upper p ~k =
  validate p k;
  let s = sum_check p in
  if s >= 1.0 then 1.0
  else if s = 0.0 then 0.0
  else
    (* Same pessimistic grain rounding as the exact analysis, so the
       bound stays above it even at the rounding resolution. *)
    Rounding.clamp01
      (Rounding.up ((s ** float_of_int (k + 1)) /. (1.0 -. s)))

let required_k_scan p ~budget ~kmax =
  if kmax < 0 then invalid_arg "Bound.required_k: negative kmax";
  let rec search k =
    if k > kmax then None
    else if pr_exceeds_upper p ~k <= budget then Some k
    else search (k + 1)
  in
  search 0

(* [pr_exceeds_upper] is non-increasing in [k] (S^(k+1) shrinks for
   S < 1 and both degenerate branches are constant), so the predicate
   "bound <= budget" is monotone and the smallest satisfying [k] can be
   bisected instead of scanned. *)
let required_k p ~budget ~kmax =
  if kmax < 0 then invalid_arg "Bound.required_k: negative kmax";
  if pr_exceeds_upper p ~k:kmax > budget then None
  else begin
    let lo = ref 0 and hi = ref kmax in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if pr_exceeds_upper p ~k:mid <= budget then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(* Soundness is a statement about the underlying probabilities, so it is
   checked against the unrounded exact value: the grain-rounded analysis
   of [Sfp] floors each recovery term and can therefore sit above the
   bound by a few grains on tiny probabilities. *)
let is_sound p ~k =
  let h = Ftes_util.Symmetric.complete_homogeneous p (k + 1) in
  let pr0 = Array.fold_left (fun acc x -> acc *. (1.0 -. x)) 1.0 p in
  let recovered = ref 0.0 in
  for f = 0 to k do
    recovered := !recovered +. (pr0 *. h.(f))
  done;
  let exact_raw = Float.max 0.0 (1.0 -. !recovered) in
  pr_exceeds_upper p ~k >= exact_raw -. 1e-15
