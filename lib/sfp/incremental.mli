(** Incremental evaluation of the SFP formulae over cached exceedance
    tables.

    The greedy re-execution ascent of {!Ftes_core.Re_execution_opt}
    evaluates formula (5) for every single-increment neighbour of the
    current re-execution vector at every step.  Recomputing formula (4)
    from scratch inside that loop costs O(members * kmax) rounded
    operations per candidate; this module precomputes, once per node
    table, the vector [Pr(f > k)] for every [k <= kmax] — in the exact
    operation order of {!Sfp.pr_exceeds}, so each entry is bit-identical
    — and re-evaluates a candidate with one fold over cached floats.

    Two further result-preserving accelerations:

    - {b prefix reuse}: formula (5) folds the per-node survival terms
      left to right, so a candidate that bumps member [j] shares the
      fold prefix [0 .. j-1] with the base vector ({!prefix_into} /
      {!candidate_failure});
    - {b saturation caps}: once a node's rounded exceedance clamps to
      exactly [0.], more re-executions cannot change any float the
      analysis produces, so the ascent skips such candidates.  The cap
      is the first [k] with a zero entry, bisected over the monotone
      table with {!Bound.required_k} as the analytic seed.

    Everything here is a pure function of the {!Sfp.node_analysis}
    inputs; {!Ftes_par.Sfp_cache} memoizes {!node_vectors} alongside
    the node tables, one per (node, h-version, mapping) key. *)

val exceed_vector : Sfp.node_analysis -> float array
(** [exceed_vector a] has [Sfp.pr_exceeds a ~k] at index [k] for every
    [k <= Sfp.kmax a], bit-identical to calling {!Sfp.pr_exceeds}. *)

type node_vectors = {
  exceed : float array;  (** {!exceed_vector} of the analysis. *)
  sat : int;
      (** first [k] with [exceed.(k) = 0.], or [kmax + 1]: re-executions
          beyond this point provably change no analysis output. *)
}

val node_vectors : Sfp.node_analysis -> node_vectors

type t
(** Evaluation state for one member-analysis array. *)

val make : node_vectors array -> t

val n_members : t -> int

val saturated : t -> member:int -> k:int -> bool
(** Whether raising [member] beyond [k] re-executions provably leaves
    every analysis float unchanged. *)

val system_failure : t -> k:int array -> float
(** Formula (5); bit-identical to
    {!Sfp.system_failure_per_iteration} on the analyses the vectors
    were built from. *)

val prefix_into : t -> k:int array -> float array -> unit
(** Fill [prefix] (length [>= members + 1]) with the left-fold
    prefixes of the formula (5) survival product for the vector [k]:
    [prefix.(j)] is the product over members [0 .. j-1]. *)

val candidate_failure : t -> k:int array -> prefix:float array -> j:int -> float
(** Formula (5) for [k] with [k.(j) + 1] substituted at [j], reusing
    the shared fold prefix; requires [k.(j) < kmax of member j] and
    [prefix] filled by {!prefix_into} for [k].  Bit-identical to
    {!system_failure} on the bumped vector. *)
