(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Fig. 6a-6d and the cruise-controller study), runs the
   ablations documented in DESIGN.md, and finishes with Bechamel
   micro-benchmarks of the analysis / scheduling / optimization kernels.

   Environment knobs:
     FTES_APPS       population size (default 150, the paper's)
     FTES_SEED       root seed (default 42)
     FTES_SKIP_MICRO set to skip the Bechamel micro-benchmarks
     FTES_QUICK      set for a fast smoke run (40 apps, fewer trials) *)

module Synthetic = Ftes_exp.Synthetic
module Figures = Ftes_exp.Figures
module Ablations = Ftes_exp.Ablations
module Csv = Ftes_util.Csv
module Config = Ftes_core.Config
module Redundancy_opt = Ftes_core.Redundancy_opt
module Workload = Ftes_gen.Workload
module Pool = Ftes_par.Pool
module Sfp_cache = Ftes_par.Sfp_cache
module Span = Ftes_obs.Span
module Sink = Ftes_obs.Sink
module Metrics = Ftes_obs.Metrics
module Obs_report = Ftes_obs.Report

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let env_flag name = Sys.getenv_opt name <> None

let quick = env_flag "FTES_QUICK"

let apps = env_int "FTES_APPS" (if quick then 40 else 150)

let seed = env_int "FTES_SEED" 42

let results_dir = "results"

(* mkdir first and treat EEXIST as success: the old exists-then-create
   sequence raced against concurrent harness invocations sharing one
   results directory. *)
let ensure_results_dir () =
  try Sys.mkdir results_dir 0o755 with Sys_error _ -> ()

let save_csv name rows =
  ensure_results_dir ();
  let path = Filename.concat results_dir name in
  Csv.write_file path rows;
  Printf.printf "[csv] wrote %s\n%!" path

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let timed name f =
  let t0 = Sys.time () in
  let r = f () in
  Printf.printf "[time] %s: %.1fs\n%!" name (Sys.time () -. t0);
  r

let walled f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Sequential-vs-parallel comparison of one OPT experiment cell.  Three
   configurations over the same applications: the unmemoized sequential
   baseline, the memoized single-domain run, and the memoized run on at
   least two domains.  The per-application costs must match bit for bit
   across all three; wall times, the (hardware-independent) evaluation
   work ratio and the cache hit rates land in bench_par.csv. *)
let bench_parallel ~apps ~seed =
  let specs = Workload.paper_suite ~count:apps ~seed () in
  let key =
    { Synthetic.ser = 1e-11; hpd = 0.25; policy = Config.Optimize }
  in
  let baseline = Config.with_memoize false Config.default in
  Redundancy_opt.reset_eval_stats ();
  let seq, seq_s =
    walled (fun () -> Synthetic.run_cell ~config:baseline ~specs key)
  in
  let seq_fresh = (Redundancy_opt.eval_stats ()).Redundancy_opt.fresh in
  Redundancy_opt.reset_eval_stats ();
  let memo, memo_s =
    walled (fun () -> Synthetic.run_cell ~config:Config.default ~specs key)
  in
  let domains = max 2 (Pool.default_domains ()) in
  let pool = Pool.create ~domains () in
  Sfp_cache.reset_totals ();
  Redundancy_opt.reset_eval_stats ();
  let par, par_s =
    walled (fun () ->
        Synthetic.run_cell ~pool ~config:Config.default ~specs key)
  in
  let sfp = Sfp_cache.totals () in
  let evals = Redundancy_opt.eval_stats () in
  let identical =
    seq.Synthetic.costs = par.Synthetic.costs
    && seq.Synthetic.costs = memo.Synthetic.costs
  in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  let memo_speedup = if memo_s > 0.0 then seq_s /. memo_s else 0.0 in
  let work_ratio =
    float_of_int seq_fresh /. float_of_int (max 1 evals.Redundancy_opt.fresh)
  in
  Printf.printf
    "apps %d, domains %d (host: %d recommended)\n\
     sequential (no memo): %.2fs wall, %d evaluations\n\
     memoized, 1 domain:   %.2fs wall (%.2fx)\n\
     memoized, %d domains:  %.2fs wall (%.2fx), %d evaluations (work \
     ratio %.2fx)\n\
     per-app costs identical: %b\n\
     SFP cache: %d hits / %d misses (%.1f%% hit rate)\n\
     eval cache: %d hits / %d misses\n%!"
    apps domains
    (Domain.recommended_domain_count ())
    seq_s seq_fresh memo_s memo_speedup domains par_s speedup
    evals.Redundancy_opt.fresh work_ratio identical sfp.Sfp_cache.total_hits
    sfp.Sfp_cache.total_misses
    (100.0 *. Sfp_cache.hit_rate sfp)
    evals.Redundancy_opt.hits evals.Redundancy_opt.misses;
  if Domain.recommended_domain_count () < 2 then
    print_endline
      "note: single-core host — the multi-domain run can only measure \
       synchronization overhead; the speedup is the memoization share alone.";
  if not identical then
    failwith "bench: parallel run diverged from the sequential baseline";
  save_csv "bench_par.csv"
    [ [ "workload"; "apps"; "domains"; "seq_s"; "memo_s"; "par_s"; "speedup";
        "memo_speedup"; "seq_evals"; "par_evals"; "work_ratio"; "identical";
        "sfp_hits"; "sfp_misses"; "sfp_hit_rate"; "eval_hits"; "eval_misses" ];
      [ "synthetic-opt-cell";
        string_of_int apps;
        string_of_int domains;
        Printf.sprintf "%.4f" seq_s;
        Printf.sprintf "%.4f" memo_s;
        Printf.sprintf "%.4f" par_s;
        Printf.sprintf "%.2f" speedup;
        Printf.sprintf "%.2f" memo_speedup;
        string_of_int seq_fresh;
        string_of_int evals.Redundancy_opt.fresh;
        Printf.sprintf "%.2f" work_ratio;
        string_of_bool identical;
        string_of_int sfp.Sfp_cache.total_hits;
        string_of_int sfp.Sfp_cache.total_misses;
        Printf.sprintf "%.4f" (Sfp_cache.hit_rate sfp);
        string_of_int evals.Redundancy_opt.hits;
        string_of_int evals.Redundancy_opt.misses ] ]

(* Observability overhead on one quick OPT cell.

   An uninstrumented in-process baseline no longer exists, so the null
   path is costed directly: the per-call price of a disabled
   [Span.with_] comes from a micro-loop, and the implied overhead of
   the instrumentation on the cell is (spans completed x that price) /
   untraced wall time.  The fully-aggregated run is also timed, and the
   per-application costs of both runs must match bit for bit — tracing
   only observes. *)
let bench_obs ~apps ~seed =
  let iters = 2_000_000 in
  let work () = Sys.opaque_identity 1 in
  let (), bare_s =
    walled (fun () -> for _ = 1 to iters do ignore (work ()) done)
  in
  let (), spanned_s =
    walled (fun () ->
        for _ = 1 to iters do
          ignore (Span.with_ ~name:"bench/noop" work)
        done)
  in
  let per_call_ns =
    max 0.0 (1e9 *. (spanned_s -. bare_s) /. float_of_int iters)
  in
  let specs = Workload.paper_suite ~count:apps ~seed () in
  let key = { Synthetic.ser = 1e-11; hpd = 0.25; policy = Config.Optimize } in
  let untraced, untraced_s =
    walled (fun () -> Synthetic.run_cell ~config:Config.default ~specs key)
  in
  Metrics.reset ();
  Span.configure ~aggregate:true ();
  let traced, traced_s =
    walled (fun () -> Synthetic.run_cell ~config:Config.default ~specs key)
  in
  Span.disable ();
  let snap = Metrics.snapshot () in
  let spans =
    List.fold_left
      (fun acc (name, v) ->
        if
          String.starts_with ~prefix:Span.span_prefix name
          && Filename.check_suffix name ".count"
        then acc + v
        else acc)
      0 snap.Metrics.counters
  in
  let null_overhead_pct =
    100.0 *. float_of_int spans *. per_call_ns /. (untraced_s *. 1e9)
  in
  let traced_overhead_pct = 100.0 *. (traced_s /. untraced_s -. 1.0) in
  let identical = untraced.Synthetic.costs = traced.Synthetic.costs in
  Printf.printf
    "disabled span: %.1f ns/call (over %d calls)\n\
     quick OPT cell: %.2fs untraced, %d spans completed when aggregated\n\
     implied null-sink overhead: %.3f%% of the cell\n\
     aggregated-run overhead:    %.1f%% wall (%.2fs)\n\
     per-app costs identical traced vs untraced: %b\n%!"
    per_call_ns iters untraced_s spans null_overhead_pct traced_overhead_pct
    traced_s identical;
  if not identical then
    failwith "bench_obs: tracing changed the optimizer's results";
  if null_overhead_pct >= 3.0 then
    failwith
      (Printf.sprintf
         "bench_obs: null-sink overhead %.2f%% breaches the 3%% budget"
         null_overhead_pct);
  save_csv "bench_obs.csv"
    [ [ "apps"; "per_call_ns"; "spans"; "untraced_s"; "traced_s";
        "null_overhead_pct"; "traced_overhead_pct"; "identical" ];
      [ string_of_int apps;
        Printf.sprintf "%.2f" per_call_ns;
        string_of_int spans;
        Printf.sprintf "%.4f" untraced_s;
        Printf.sprintf "%.4f" traced_s;
        Printf.sprintf "%.4f" null_overhead_pct;
        Printf.sprintf "%.2f" traced_overhead_pct;
        string_of_bool identical ] ]

let () =
  Printf.printf
    "FTES benchmark harness: reproduction of Izosimov, Polian, Pop, Eles, \
     Peng,\n\
     \"Analysis and Optimization of Fault-Tolerant Embedded Systems with\n\
     Hardened Processors\" (DATE 2009).\n\
     population: %d applications (paper: 150), seed %d\n%!"
    apps seed;
  section "Parallel + memoized exploration";
  bench_parallel ~apps:(if quick then 8 else 24) ~seed;

  section "Observability overhead";
  bench_obs ~apps:(if quick then 8 else 24) ~seed;

  let suite = Synthetic.create_suite ~count:apps ~seed () in

  section "Fig. 6a — acceptance vs hardening performance degradation";
  let fig6a = timed "fig6a" (fun () -> Figures.fig6a suite) in
  print_string (Figures.render fig6a);
  save_csv "fig6a.csv" (Figures.to_csv fig6a);

  section "Fig. 6b — acceptance for ArC in {15, 20, 25}";
  let fig6b = timed "fig6b" (fun () -> Figures.fig6b suite) in
  List.iter
    (fun artifact ->
      print_string (Figures.render artifact);
      print_newline ();
      save_csv (artifact.Figures.id ^ ".csv") (Figures.to_csv artifact))
    fig6b;

  section "Fig. 6c — acceptance vs soft error rate (HPD = 5%)";
  let fig6c = timed "fig6c" (fun () -> Figures.fig6c suite) in
  print_string (Figures.render fig6c);
  save_csv "fig6c.csv" (Figures.to_csv fig6c);

  section "Fig. 6d — acceptance vs soft error rate (HPD = 100%)";
  let fig6d = timed "fig6d" (fun () -> Figures.fig6d suite) in
  print_string (Figures.render fig6d);
  save_csv "fig6d.csv" (Figures.to_csv fig6d);

  section "Cruise-controller case study";
  let cc = timed "cc" (fun () -> Figures.cc_study ()) in
  print_string (Figures.render_cc cc);

  section "Ablation: recovery-slack policy";
  let slack_count = if quick then 16 else 40 in
  let slack =
    timed "slack ablation" (fun () ->
        Ablations.slack_ablation ~count:slack_count ~seed ())
  in
  print_string (Ablations.render_slack slack);

  section "Ablation: mapping optimization";
  let mapping =
    timed "mapping ablation" (fun () ->
        Ablations.mapping_ablation ~count:slack_count ~seed ())
  in
  print_string (Ablations.render_mapping mapping);

  section "Ablation: exact SFP analysis vs closed-form bound";
  let bound =
    timed "bound ablation" (fun () ->
        Ablations.bound_ablation ~count:(if quick then 10 else 30) ~seed ())
  in
  print_string (Ablations.render_bound bound);

  section "Ablation: heuristic vs exhaustive optimum";
  let gap =
    timed "optimality gap" (fun () ->
        Ablations.optimality_gap ~count:(if quick then 6 else 12) ~seed ())
  in
  print_string (Ablations.render_gap gap);

  section "Ablation: software-redundancy policy";
  let policy =
    timed "retry policy" (fun () ->
        Ablations.retry_policy_comparison ~count:slack_count ~seed ())
  in
  print_string (Ablations.render_policy policy);

  section "Extension: checkpointed recovery";
  let checkpoint =
    timed "checkpoint ablation" (fun () ->
        Ablations.checkpoint_ablation ~count:(if quick then 10 else 30) ~seed ())
  in
  print_string (Ablations.render_checkpoint checkpoint);

  section "Exact worst case vs the schedule bounds";
  let exact =
    timed "exact worst case" (fun () ->
        Ablations.exact_worst_case ~count:(if quick then 4 else 8) ~seed ())
  in
  print_string (Ablations.render_exact exact);

  section "Runtime scaling";
  let runtime =
    timed "runtime study" (fun () ->
        Ablations.runtime_study ~per_size:(if quick then 2 else 5) ~seed ())
  in
  print_string (Ablations.render_runtime runtime);

  section "Fault-injection validation of the SFP analysis";
  let trials = if quick then 5_000 else 20_000 in
  let optimism =
    timed "fault injection" (fun () ->
        Ablations.optimism ~count:5 ~trials ~seed ())
  in
  print_string (Ablations.render_optimism optimism);

  if env_flag "FTES_SKIP_MICRO" then
    print_endline "\n(micro-benchmarks skipped: FTES_SKIP_MICRO set)"
  else begin
    section "Bechamel micro-benchmarks";
    Micro.run ()
  end;

  (* Final metrics snapshot: every counter the instrumented hot paths
     accumulated across the whole harness run. *)
  ensure_results_dir ();
  let metrics_path = Filename.concat results_dir "metrics.csv" in
  Obs_report.write_metrics_csv metrics_path (Metrics.snapshot ());
  Printf.printf "[csv] wrote %s\n%!" metrics_path;
  print_endline "\nbench: done"
