(* Campaign benchmark (PR 10): the sharded exploration harness at
   population scale.

   1. Sequential reference: the full population run in-process through
      [Merge.run_sequential] — no shards, no checkpoints.

   2. Sharded campaign: the same manifest fanned out to 4 worker
      processes through the real [ftes campaign-worker] path, then
      merged from the checkpoints.  The merged fingerprint must equal
      the sequential one byte for byte — the program exits non-zero on
      any divergence.

   3. Kill + resume: a second campaign whose shard 1 worker is killed
      (exit 130) after its first cell, then resumed.  The resume must
      skip every complete shard (resumed < shards is asserted), and the
      re-merged fingerprint must again equal the sequential one.

   Environment knobs (shared with the main harness):
     FTES_APPS   population size (default 1500; 12 quick)
     FTES_SEED   master seed (default 42)
     FTES_JOBS   concurrent worker processes (default 4)
     FTES_BIN    ftes binary (default ../bin/ftes.exe next to this exe)
     FTES_QUICK  fast smoke run

   Appends one trajectory record per run to BENCH_campaign.json
   (created on first use) and rewrites results/bench_campaign.csv. *)

module Json = Ftes_util.Json
module Csv = Ftes_util.Csv
module Config = Ftes_core.Config
module Manifest = Ftes_campaign.Manifest
module Checkpoint = Ftes_campaign.Checkpoint
module Runner = Ftes_campaign.Runner
module Merge = Ftes_campaign.Merge

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let quick = Sys.getenv_opt "FTES_QUICK" <> None

let apps = env_int "FTES_APPS" (if quick then 12 else 1_500)

let seed = env_int "FTES_SEED" 42

let jobs = env_int "FTES_JOBS" 4

let shards = 4

let exe =
  match Sys.getenv_opt "FTES_BIN" with
  | Some path -> path
  | None ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "ftes.exe"))

let mk_dir () =
  let path = Filename.temp_file "ftes-bench-campaign" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

let checkpoints_of ~manifest ~dir =
  List.init shards (fun shard ->
      match Checkpoint.load ~manifest ~dir shard with
      | Ok c -> c
      | Error e -> failwith ("bench_campaign: " ^ e))

let merged_of ~manifest ~dir =
  match Merge.of_checkpoints ~manifest (checkpoints_of ~manifest ~dir) with
  | Ok m -> m
  | Error e -> failwith ("bench_campaign: " ^ e)

let require label = function
  | [] -> ()
  | failed ->
      failwith
        (Printf.sprintf "bench_campaign: %s: %s" label
           (String.concat "; "
              (List.map
                 (fun (shard, reason) ->
                   Printf.sprintf "shard %d: %s" shard reason)
                 failed)))

(* --- result files --- *)

let results_dir = "results"

let ensure_results_dir () =
  try Sys.mkdir results_dir 0o755 with Sys_error _ -> ()

let trajectory_path = "BENCH_campaign.json"

let append_trajectory record =
  let existing =
    if Sys.file_exists trajectory_path then begin
      let ic = open_in_bin trajectory_path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Json.of_string text with
      | Ok (Json.List runs) -> runs
      | Ok _ | Error _ -> []
    end
    else []
  in
  let oc = open_out trajectory_path in
  output_string oc (Json.to_string (Json.List (existing @ [ record ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] appended run %d to %s\n%!"
    (List.length existing + 1)
    trajectory_path

let () =
  let manifest =
    Manifest.make ~sers:[ 1e-11 ] ~hpds:[ 0.25 ]
      ~policies:[ Config.Fixed_min; Config.Optimize ] ~apps ~seed ~shards ()
  in
  Printf.printf
    "Campaign benchmark: %d apps, %d shards, %d jobs, seed %d%s\n\
     worker binary: %s\n%!"
    apps shards jobs seed
    (if quick then " (quick)" else "")
    exe;
  (* 1. Sequential reference. *)
  let seq_wall, sequential = time (fun () -> Merge.run_sequential ~manifest) in
  let fingerprint = Merge.fingerprint sequential in
  Printf.printf "sequential: %.2fs, fingerprint %s\n%!" seq_wall fingerprint;
  (* 2. Sharded campaign over real worker processes. *)
  let dir = mk_dir () in
  Manifest.save ~dir manifest;
  let sharded_wall, summary =
    time (fun () -> Runner.run_processes ~jobs ~exe ~manifest ~dir ())
  in
  require "sharded run" summary.Runner.failed;
  let merged = merged_of ~manifest ~dir in
  Printf.printf "4-shard:    %.2fs (%d executed), fingerprint %s\n%!"
    sharded_wall summary.Runner.executed (Merge.fingerprint merged);
  if not (Merge.equal merged sequential) then
    failwith "bench_campaign: sharded merge diverged from the sequential run";
  (* 3. Kill one worker mid-run, resume, merge again. *)
  let dir2 = mk_dir () in
  Manifest.save ~dir:dir2 manifest;
  Unix.putenv "FTES_CAMPAIGN_KILL_AFTER" "1";
  Unix.putenv "FTES_CAMPAIGN_KILL_SHARD" "1";
  let killed = Runner.run_processes ~jobs ~exe ~manifest ~dir:dir2 () in
  Unix.putenv "FTES_CAMPAIGN_KILL_AFTER" "";
  if not (List.mem_assoc 1 killed.Runner.failed) then
    failwith "bench_campaign: the planted kill of shard 1 did not happen";
  let resume_wall, resumed =
    time (fun () -> Runner.run_processes ~jobs ~exe ~manifest ~dir:dir2 ())
  in
  require "resume" resumed.Runner.failed;
  if resumed.Runner.executed >= shards then
    failwith "bench_campaign: resume recomputed complete shards";
  if resumed.Runner.skipped <> killed.Runner.executed then
    failwith "bench_campaign: resume did not skip every completed shard";
  Printf.printf
    "resume:     %.2fs — %d skipped, %d re-run (%d from a partial \
     checkpoint)\n%!"
    resume_wall resumed.Runner.skipped resumed.Runner.executed
    resumed.Runner.resumed;
  let remerged = merged_of ~manifest ~dir:dir2 in
  if Merge.fingerprint remerged <> fingerprint then
    failwith "bench_campaign: resumed merge diverged from the sequential run";
  let speedup = seq_wall /. Float.max 1e-9 sharded_wall in
  Printf.printf
    "merge fingerprints identical across all three runs: %s\n\
     speedup %.2fx, resume overhead %.1f%% of the sharded wall\n%!"
    fingerprint speedup
    (100.0 *. resume_wall /. Float.max 1e-9 sharded_wall);
  ensure_results_dir ();
  let csv_path = Filename.concat results_dir "bench_campaign.csv" in
  Csv.write_file csv_path
    [ [ "apps"; "shards"; "jobs"; "seed"; "quick"; "seq_wall_s";
        "sharded_wall_s"; "speedup"; "resume_wall_s"; "resume_executed";
        "resume_skipped"; "fingerprint" ];
      [ string_of_int apps;
        string_of_int shards;
        string_of_int jobs;
        string_of_int seed;
        string_of_bool quick;
        Printf.sprintf "%.2f" seq_wall;
        Printf.sprintf "%.2f" sharded_wall;
        Printf.sprintf "%.2f" speedup;
        Printf.sprintf "%.2f" resume_wall;
        string_of_int resumed.Runner.executed;
        string_of_int resumed.Runner.skipped;
        fingerprint ] ];
  Printf.printf "[csv] wrote %s\n%!" csv_path;
  append_trajectory
    (Json.Object
       [ ("bench", Json.String "campaign");
         ("apps", Json.Number (float_of_int apps));
         ("shards", Json.Number (float_of_int shards));
         ("jobs", Json.Number (float_of_int jobs));
         ("seed", Json.Number (float_of_int seed));
         ("quick", Json.Bool quick);
         ("seq_wall_s", Json.Number seq_wall);
         ("sharded_wall_s", Json.Number sharded_wall);
         ("speedup", Json.Number speedup);
         ("resume_wall_s", Json.Number resume_wall);
         ("resume_executed",
          Json.Number (float_of_int resumed.Runner.executed));
         ("resume_skipped", Json.Number (float_of_int resumed.Runner.skipped));
         ("fingerprint", Json.String fingerprint) ])
