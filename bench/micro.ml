(* Bechamel micro-benchmarks of the kernels behind each reproduced
   artifact: the SFP analysis (both the O(n*k) dynamic program and the
   exponential multiset enumeration it replaces), the recovery-slack
   scheduler, the three optimization layers, the fault-injection
   simulator and the workload generator. *)

open Bechamel
open Toolkit

module Workload = Ftes_gen.Workload
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp
module Config = Ftes_core.Config

let sample_problem =
  lazy
    (let spec = Workload.generate_spec ~seed:7 ~index:0 ~n_processes:40 () in
     Workload.problem_of_spec { Workload.ser = 1e-11; hpd = 0.25 } spec)

let sample_design =
  lazy
    (let problem = Lazy.force sample_problem in
     let members = [| 0; 1; 2; 3 |] in
     let mapping =
       Ftes_core.Mapping_opt.initial_mapping ~config:Config.default problem
         ~members
     in
     Design.make problem ~members ~levels:[| 1; 1; 1; 1 |]
       ~reexecs:[| 2; 2; 2; 2 |] ~mapping)

let sample_probs n =
  Array.init n (fun i -> 1e-5 *. float_of_int (1 + (i mod 7)))

let test_sfp_dp =
  let probs = sample_probs 20 in
  Test.make ~name:"sfp: node analysis DP (20 procs, k<=12)"
    (Staged.stage (fun () ->
         let a = Sfp.node_analysis probs in
         Sfp.pr_exceeds a ~k:5))

let test_sfp_enum =
  let probs = sample_probs 6 in
  Test.make ~name:"sfp: multiset enumeration (6 procs, k=3)"
    (Staged.stage (fun () -> Sfp.pr_exceeds_enumerated probs ~k:3))

let test_scheduler =
  Test.make ~name:"sched: root schedule (40 procs, 4 nodes)"
    (Staged.stage (fun () ->
         let problem = Lazy.force sample_problem in
         let design = Lazy.force sample_design in
         Scheduler.schedule_length problem design))

let test_reexec =
  Test.make ~name:"opt: ReExecutionOpt (40 procs, 4 nodes)"
    (Staged.stage (fun () ->
         let problem = Lazy.force sample_problem in
         let design = Lazy.force sample_design in
         Ftes_core.Re_execution_opt.for_mapping problem design))

let test_redundancy =
  Test.make ~name:"opt: RedundancyOpt probe (40 procs, 4 nodes)"
    (Staged.stage (fun () ->
         let problem = Lazy.force sample_problem in
         let design = Lazy.force sample_design in
         Ftes_core.Redundancy_opt.probe ~config:Config.default problem design))

let test_mapping =
  Test.make ~name:"opt: MappingAlgorithm tabu run (20 procs, 2 nodes)"
    (Staged.stage
       (let spec = Workload.generate_spec ~seed:9 ~index:1 ~n_processes:20 () in
        let problem =
          Workload.problem_of_spec { Workload.ser = 1e-11; hpd = 0.25 } spec
        in
        fun () ->
          Ftes_core.Mapping_opt.run ~config:Config.default
            ~objective:Ftes_core.Mapping_opt.Schedule_length problem
            ~members:[| 0; 1 |]))

let test_strategy =
  Test.make ~name:"opt: DesignStrategy OPT (fig1 example)"
    (Staged.stage
       (let problem = Ftes_cc.Fig_examples.fig1_problem () in
        fun () -> Ftes_core.Design_strategy.run ~config:Config.default problem))

let test_simulator =
  Test.make ~name:"faultsim: one injected iteration (40 procs)"
    (Staged.stage
       (let problem = Lazy.force sample_problem in
        let design = Lazy.force sample_design in
        let schedule = Scheduler.schedule problem design in
        let prng = Ftes_util.Prng.create 11 in
        fun () ->
          Ftes_faultsim.Executor.run_iteration ~boost:1000.0 prng problem
            design schedule))

let test_generator =
  Test.make ~name:"gen: 40-process application spec"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          Workload.generate_spec ~seed:13 ~index:!counter ~n_processes:40 ()))

let test_pool_map =
  Test.make ~name:"par: Pool.map overhead (2 domains, 64 tiny tasks)"
    (Staged.stage
       (let pool = Ftes_par.Pool.create ~domains:2 () in
        let xs = List.init 64 Fun.id in
        fun () -> Ftes_par.Pool.map ~pool (fun x -> x * x) xs))

let test_sfp_cache =
  Test.make ~name:"par: Sfp_cache hit (4 members, k<=12)"
    (Staged.stage
       (let problem = Lazy.force sample_problem in
        let design = Lazy.force sample_design in
        let cache = Ftes_par.Sfp_cache.create () in
        fun () ->
          Ftes_par.Sfp_cache.node_analysis cache problem design ~member:0
            ~kmax:12))

let test_redundancy_cached =
  Test.make ~name:"opt: RedundancyOpt probe, memoized (40 procs, 4 nodes)"
    (Staged.stage
       (let problem = Lazy.force sample_problem in
        let design = Lazy.force sample_design in
        let cache = Ftes_core.Redundancy_opt.create_cache () in
        fun () ->
          Ftes_core.Redundancy_opt.probe ~cache ~config:Config.default problem
            design))

let tests =
  [ test_sfp_dp; test_sfp_enum; test_scheduler; test_reexec; test_redundancy;
    test_redundancy_cached; test_mapping; test_strategy; test_simulator;
    test_generator; test_pool_map; test_sfp_cache ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Printf.printf "  %-48s %12.1f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "  %-48s (no estimate)\n%!" name)
        results)
    tests
