(* Branch-and-bound benchmark: the solved-size frontier of the exact
   optimizer against the reference enumeration.

   A ladder of synthetic instances grows in task count x processor
   count.  Each rung small enough for [Exhaustive] is solved by both
   engines and their optima must match bit for bit; past the reference
   enumeration's candidate budget only the branch-and-bound runs, and
   its optimality certificate is audited in-process by the verifier's
   bnb/* rules before the rung counts as solved.  The program exits
   non-zero on any divergence, any failed audit, a candidate budget
   overrun, a rung where pruning never fired, and — the point of the
   exercise — when the largest certified-optimal instance is not at
   least 2x larger (n x m) than the largest one Exhaustive finished.

   Environment knobs (shared with the main harness):
     FTES_SEED   root seed (default 42; rung sizes are fixed, the seed
                 picks the instances)
     FTES_QUICK  fast smoke run (lower branch-and-bound budget)

   Appends one trajectory record per run to BENCH_bnb.json and
   rewrites results/bench_bnb.csv. *)

module Json = Ftes_util.Json
module Csv = Ftes_util.Csv
module Config = Ftes_core.Config
module Workload = Ftes_gen.Workload
module Redundancy_opt = Ftes_core.Redundancy_opt
module Bnb = Ftes_bnb.Bnb
module Cert = Ftes_analyze.Bnb_certificate
module Report = Ftes_verify.Report

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let quick = Sys.getenv_opt "FTES_QUICK" <> None

let seed = env_int "FTES_SEED" 42

(* Candidate budgets: the reference enumeration gets the same cap as
   its in-library default; the branch-and-bound cap is a tripwire (a
   certified run near it would mean the pruning regressed), not a
   weaker claim — overrunning it fails the bench. *)
let exhaustive_budget = 250_000.0

let bnb_budget = if quick then 100_000 else 500_000

(* The ladder: the first rungs stay within [exhaustive_budget] so the
   differential check has teeth; the last rung's candidate space is ~4
   orders of magnitude past it and is solved by pruning alone.  All
   rungs use the paper's nominal SER corner. *)
type rung = { label : string; n : int; lib : int; levels : int }

let ladder =
  [ { label = "n4-lib2"; n = 4; lib = 2; levels = 3 };
    { label = "n6-lib2"; n = 6; lib = 2; levels = 3 };
    { label = "n6-lib3"; n = 6; lib = 3; levels = 3 };
    { label = "n8-lib3"; n = 8; lib = 3; levels = 3 };
    { label = "n12-lib4"; n = 12; lib = 4; levels = 3 } ]

let problem_of rung =
  let params =
    { Workload.default_params with
      Workload.n_library = rung.lib;
      levels = rung.levels }
  in
  let spec =
    Workload.generate_spec ~params ~seed ~index:0 ~n_processes:rung.n ()
  in
  Workload.problem_of_spec ~params { Workload.ser = 1e-11; hpd = 0.25 } spec

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type row = {
  rung : rung;
  space : float;
  exhaustive : (Redundancy_opt.result option * float) option;
      (* (optimum, wall) when the rung fit the reference budget. *)
  bnb : Redundancy_opt.result option;
  bnb_wall_s : float;
  counters : Cert.counters;
  gap : float option;
}

let cost_of = function
  | Some r -> r.Redundancy_opt.cost
  | None -> infinity

let sl_of = function
  | Some r -> r.Redundancy_opt.schedule_length
  | None -> infinity

let run_rung config rung =
  let problem = problem_of rung in
  let space = Bnb.search_space problem in
  let exhaustive =
    if space <= exhaustive_budget then
      Some (time (fun () -> Ftes_core.Exhaustive.run ~config problem))
    else None
  in
  let outcome, bnb_wall_s =
    match time (fun () -> Bnb.solve ~limit:bnb_budget ~config problem) with
    | exception Bnb.Budget_exhausted n ->
        failwith
          (Printf.sprintf
             "bench_bnb: %s exhausted the %d-candidate budget at %d — the \
              pruning regressed"
             rung.label bnb_budget n)
    | r -> r
  in
  (match outcome.Bnb.audit with
  | Some report when Report.ok report -> ()
  | Some report ->
      print_string (Report.to_text report);
      failwith
        (Printf.sprintf "bench_bnb: %s certificate failed its audit"
           rung.label)
  | None -> failwith "bench_bnb: solve ran without certification");
  (match exhaustive with
  | Some (ex, _)
    when cost_of ex <> cost_of outcome.Bnb.best
         || sl_of ex <> sl_of outcome.Bnb.best ->
      failwith
        (Printf.sprintf
           "bench_bnb: %s diverged — exhaustive (cost %g, sl %g) vs \
            branch-and-bound (cost %g, sl %g)"
           rung.label (cost_of ex) (sl_of ex)
           (cost_of outcome.Bnb.best)
           (sl_of outcome.Bnb.best))
  | _ -> ());
  { rung;
    space;
    exhaustive;
    bnb = outcome.Bnb.best;
    bnb_wall_s;
    counters = outcome.Bnb.certificate.Cert.counters;
    gap = Cert.gap outcome.Bnb.certificate }

let prunes c =
  c.Cert.pruned_cost + c.Cert.pruned_arch + c.Cert.pruned_symmetry
  + c.Cert.pruned_levels + c.Cert.pruned_mappings

let report row =
  let c = row.counters in
  Printf.printf
    "%s (space %.3g): bnb %.2fs %s, evaluated %d (%.4f%% of the space), \
     prunes %d cost / %d arch / %d symmetry / %d levels / %d mappings%s%s\n%!"
    row.rung.label row.space row.bnb_wall_s
    (match row.bnb with
    | Some r -> Printf.sprintf "cost %g" r.Redundancy_opt.cost
    | None -> "infeasible")
    c.Cert.evaluated
    (100.0 *. float_of_int c.Cert.evaluated /. row.space)
    c.Cert.pruned_cost c.Cert.pruned_arch c.Cert.pruned_symmetry
    c.Cert.pruned_levels c.Cert.pruned_mappings
    (match row.exhaustive with
    | Some (_, wall) -> Printf.sprintf ", exhaustive %.2fs (identical)" wall
    | None -> ", beyond the exhaustive budget")
    (match row.gap with
    | Some g -> Printf.sprintf ", heuristic gap %.2f%%" (100.0 *. g)
    | None -> "")

let csv_row row =
  let c = row.counters in
  [ row.rung.label;
    string_of_int row.rung.n;
    string_of_int row.rung.lib;
    string_of_int row.rung.levels;
    string_of_int seed;
    string_of_bool quick;
    Printf.sprintf "%.6g" row.space;
    (match row.exhaustive with
    | Some (_, wall) -> Printf.sprintf "%.4f" wall
    | None -> "");
    Printf.sprintf "%.4f" row.bnb_wall_s;
    (match row.bnb with
    | Some r -> Printf.sprintf "%.17g" r.Redundancy_opt.cost
    | None -> "");
    (match row.gap with Some g -> Printf.sprintf "%.6f" g | None -> "");
    string_of_int c.Cert.expanded;
    string_of_int c.Cert.closed;
    string_of_int c.Cert.evaluated;
    string_of_int c.Cert.pruned_cost;
    string_of_int c.Cert.pruned_arch;
    string_of_int c.Cert.pruned_symmetry;
    string_of_int c.Cert.pruned_levels;
    string_of_int c.Cert.pruned_mappings;
    Printf.sprintf "%.6f"
      (1.0 -. (float_of_int c.Cert.evaluated /. row.space)) ]

let json_of_row row =
  let c = row.counters in
  let int name v = (name, Json.Number (float_of_int v)) in
  ( row.rung.label,
    Json.Object
      [ int "n" row.rung.n;
        int "lib" row.rung.lib;
        ("space", Json.Number row.space);
        ( "exhaustive_wall_s",
          match row.exhaustive with
          | Some (_, wall) -> Json.Number wall
          | None -> Json.Null );
        ("bnb_wall_s", Json.Number row.bnb_wall_s);
        ( "optimal_cost",
          match row.bnb with
          | Some r -> Json.Number r.Redundancy_opt.cost
          | None -> Json.Null );
        ( "gap",
          match row.gap with Some g -> Json.Number g | None -> Json.Null );
        int "evaluated" c.Cert.evaluated;
        int "pruned" (prunes c) ] )

let results_dir = "results"

let ensure_results_dir () =
  try Sys.mkdir results_dir 0o755 with Sys_error _ -> ()

let trajectory_path = "BENCH_bnb.json"

let append_trajectory record =
  let existing =
    if Sys.file_exists trajectory_path then begin
      let ic = open_in_bin trajectory_path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Json.of_string text with
      | Ok (Json.List runs) -> runs
      | Ok _ | Error _ -> []
    end
    else []
  in
  let oc = open_out trajectory_path in
  output_string oc (Json.to_string (Json.List (existing @ [ record ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] appended run %d to %s\n%!"
    (List.length existing + 1)
    trajectory_path

let () =
  Printf.printf
    "Branch-and-bound benchmark: solved-size frontier vs Exhaustive\n\
     seed %d%s\n%!"
    seed
    (if quick then " (quick)" else "");
  let config = Config.make ~certify:true () in
  let rows = List.map (run_rung config) ladder in
  List.iter report rows;
  (* The frontier claim: the largest certified-optimal rung must be at
     least twice the size (n x m) of the largest rung the reference
     enumeration finished. *)
  let size row = row.rung.n * row.rung.lib in
  let max_exhaustive =
    List.fold_left
      (fun acc row ->
        if row.exhaustive <> None then max acc (size row) else acc)
      0 rows
  in
  let max_bnb_only =
    List.fold_left
      (fun acc row ->
        if row.exhaustive = None && row.bnb <> None then max acc (size row)
        else acc)
      0 rows
  in
  Printf.printf
    "frontier: exhaustive up to n*m = %d, certified optimum proven at \
     n*m = %d (%.1fx)\n%!"
    max_exhaustive max_bnb_only
    (float_of_int max_bnb_only /. float_of_int (max 1 max_exhaustive));
  if max_bnb_only < 2 * max_exhaustive then
    failwith
      "bench_bnb: the branch-and-bound no longer proves optimality at \
       twice the exhaustive frontier";
  if List.for_all (fun row -> prunes row.counters = 0) rows then
    failwith "bench_bnb: pruning never fired on any rung";
  ensure_results_dir ();
  let csv_path = Filename.concat results_dir "bench_bnb.csv" in
  Csv.write_file csv_path
    ([ "rung"; "n"; "lib"; "levels"; "seed"; "quick"; "space";
       "exhaustive_wall_s"; "bnb_wall_s"; "optimal_cost"; "gap"; "expanded";
       "closed"; "evaluated"; "pruned_cost"; "pruned_arch";
       "pruned_symmetry"; "pruned_levels"; "pruned_mappings"; "prune_rate" ]
     :: List.map csv_row rows);
  Printf.printf "[csv] wrote %s\n%!" csv_path;
  append_trajectory
    (Json.Object
       ([ ("timestamp", Json.Number (Unix.time ()));
          ("seed", Json.Number (float_of_int seed));
          ("quick", Json.Bool quick) ]
       @ List.map json_of_row rows))
