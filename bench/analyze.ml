(* Pre-flight analysis benchmark: measures the analyzer's own latency
   over a synthetic population, then runs experiment cells twice — once
   plain, once with the per-application pre-flight report feeding the
   design-space walk as its pruning oracle — and reports the wall-time
   delta together with the pruned-assignment / pruned-architecture
   counters.  The pruning tests are one-sided proofs, so the per-app
   costs of the two runs must be identical bit for bit; the program
   exits non-zero on any divergence, and on a paper-SER quick cell that
   prunes nothing (the analyzer would be dead weight).

   Cells: the paper's nominal corner (SER 1e-11, where deadline bounds
   do the pruning) and a high-SER stress corner (SER 3e-8, where
   reliability-deadness also fires).

   Environment knobs (shared with the main harness):
     FTES_APPS   population size (default 24; 8 under FTES_QUICK)
     FTES_SEED   root seed (default 42)
     FTES_QUICK  fast smoke run

   Appends one trajectory record per run to BENCH_analyze.json and
   rewrites results/bench_analyze.csv. *)

module Json = Ftes_util.Json
module Csv = Ftes_util.Csv
module Config = Ftes_core.Config
module Synthetic = Ftes_exp.Synthetic
module Workload = Ftes_gen.Workload
module Metrics = Ftes_obs.Metrics
module Preflight = Ftes_analyze.Preflight

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let quick = Sys.getenv_opt "FTES_QUICK" <> None

let apps = env_int "FTES_APPS" (if quick then 8 else 24)

let seed = env_int "FTES_SEED" 42

let counter name snapshot =
  Option.value ~default:0 (List.assoc_opt name snapshot.Metrics.counters)

(* --- analyzer latency --- *)

let preflight_latency specs cell =
  let config = Config.default in
  let total = ref 0.0 and slowest = ref 0.0 and infeasible = ref 0 in
  List.iter
    (fun spec ->
      let problem = Workload.problem_of_spec cell spec in
      let t0 = Unix.gettimeofday () in
      let pf =
        Preflight.run ~kmax:config.Config.kmax ~slack:config.Config.slack
          problem
      in
      let dt = Unix.gettimeofday () -. t0 in
      total := !total +. dt;
      if dt > !slowest then slowest := dt;
      if not (Preflight.feasible pf) then incr infeasible)
    specs;
  (!total /. float_of_int (max 1 (List.length specs)), !slowest, !infeasible)

(* --- pruned vs plain cell --- *)

type cell_stats = {
  label : string;
  plain_wall_s : float;
  pruned_wall_s : float;
  pruned_assignments : int;
  pruned_architectures : int;
  identical : bool;
  mean_preflight_s : float;
  max_preflight_s : float;
  infeasible_apps : int;
}

let run_corner label specs key =
  let cell = { Workload.ser = key.Synthetic.ser; hpd = key.Synthetic.hpd } in
  let mean_preflight_s, max_preflight_s, infeasible_apps =
    preflight_latency specs cell
  in
  let timed analyze =
    Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let run = Synthetic.run_cell ~config:Config.default ~analyze ~specs key in
    (run, Unix.gettimeofday () -. t0, Metrics.snapshot ())
  in
  let plain, plain_wall_s, _ = timed false in
  let pruned, pruned_wall_s, snapshot = timed true in
  { label;
    plain_wall_s;
    pruned_wall_s;
    pruned_assignments = counter "analyze.pruned_assignments" snapshot;
    pruned_architectures = counter "analyze.pruned_architectures" snapshot;
    identical = plain.Synthetic.costs = pruned.Synthetic.costs;
    mean_preflight_s;
    max_preflight_s;
    infeasible_apps }

let report stats =
  Printf.printf
    "%s: plain %.2fs, pruned %.2fs (%.2fx), skipped %d assignments + %d \
     architectures, preflight %.1f us mean / %.1f us max, %d provably \
     infeasible, identical costs: %b\n%!"
    stats.label stats.plain_wall_s stats.pruned_wall_s
    (stats.plain_wall_s /. Float.max 1e-9 stats.pruned_wall_s)
    stats.pruned_assignments stats.pruned_architectures
    (stats.mean_preflight_s *. 1e6)
    (stats.max_preflight_s *. 1e6)
    stats.infeasible_apps stats.identical

let csv_row stats =
  [ stats.label;
    string_of_int apps;
    string_of_int seed;
    string_of_bool quick;
    Printf.sprintf "%.4f" stats.plain_wall_s;
    Printf.sprintf "%.4f" stats.pruned_wall_s;
    string_of_int stats.pruned_assignments;
    string_of_int stats.pruned_architectures;
    Printf.sprintf "%.6f" stats.mean_preflight_s;
    Printf.sprintf "%.6f" stats.max_preflight_s;
    string_of_int stats.infeasible_apps;
    string_of_bool stats.identical ]

let json_of_stats stats =
  ( stats.label,
    Json.Object
      [ ("plain_wall_s", Json.Number stats.plain_wall_s);
        ("pruned_wall_s", Json.Number stats.pruned_wall_s);
        ( "pruned_assignments",
          Json.Number (float_of_int stats.pruned_assignments) );
        ( "pruned_architectures",
          Json.Number (float_of_int stats.pruned_architectures) );
        ("mean_preflight_s", Json.Number stats.mean_preflight_s);
        ("max_preflight_s", Json.Number stats.max_preflight_s);
        ("infeasible_apps", Json.Number (float_of_int stats.infeasible_apps));
        ("identical", Json.Bool stats.identical) ] )

let results_dir = "results"

let ensure_results_dir () =
  try Sys.mkdir results_dir 0o755 with Sys_error _ -> ()

let trajectory_path = "BENCH_analyze.json"

let append_trajectory record =
  let existing =
    if Sys.file_exists trajectory_path then begin
      let ic = open_in_bin trajectory_path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Json.of_string text with
      | Ok (Json.List runs) -> runs
      | Ok _ | Error _ -> []
    end
    else []
  in
  let oc = open_out trajectory_path in
  output_string oc (Json.to_string (Json.List (existing @ [ record ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] appended run %d to %s\n%!"
    (List.length existing + 1)
    trajectory_path

let () =
  Printf.printf
    "Analyze benchmark: pre-flight latency and pruned-vs-plain cells\n\
     population: %d applications, seed %d%s\n%!"
    apps seed
    (if quick then " (quick)" else "");
  let specs = Workload.paper_suite ~count:apps ~seed () in
  let corners =
    [ run_corner "paper-ser" specs
        { Synthetic.ser = 1e-11; hpd = 0.25; policy = Config.Optimize };
      run_corner "high-ser" specs
        { Synthetic.ser = 3e-8; hpd = 0.25; policy = Config.Optimize } ]
  in
  List.iter report corners;
  if List.exists (fun s -> not s.identical) corners then
    failwith "bench_analyze: pruned cell diverged from the plain outputs";
  let skipped s = s.pruned_assignments + s.pruned_architectures in
  if List.fold_left (fun acc s -> acc + skipped s) 0 corners = 0 then
    failwith "bench_analyze: pre-flight pruning never fired";
  ensure_results_dir ();
  let csv_path = Filename.concat results_dir "bench_analyze.csv" in
  Csv.write_file csv_path
    ([ "cell"; "apps"; "seed"; "quick"; "plain_wall_s"; "pruned_wall_s";
       "pruned_assignments"; "pruned_architectures"; "mean_preflight_s";
       "max_preflight_s"; "infeasible_apps"; "identical" ]
     :: List.map csv_row corners);
  Printf.printf "[csv] wrote %s\n%!" csv_path;
  append_trajectory
    (Json.Object
       ([ ("timestamp", Json.Number (Unix.time ()));
          ("apps", Json.Number (float_of_int apps));
          ("seed", Json.Number (float_of_int seed));
          ("quick", Json.Bool quick) ]
       @ List.map json_of_stats corners));
  print_endline "bench_analyze: done"
