(* Frontier benchmark (PR 5): two measurements of the Pareto archive.

   1. Raw archive throughput: 10k synthetic feasible points inserted
      into an exact archive and into an ε-gridded one, best-of-reps
      wall time and points/s, plus the resulting box counts and the
      hypervolume against the worst corner of the sampled ranges.

   2. One OPT frontier cell on cruise control: [run_frontier] against
      a plain [run] on the same problem and config.  The frontier's
      [best] must carry the same cost and the same design arrays bit
      for bit — the run doubles as the anytime-optimality fingerprint
      check and the program exits non-zero on any divergence.

   Environment knobs (shared with the main harness):
     FTES_POINTS  synthetic insertion count (default 10000; 2000 quick)
     FTES_SEED    root seed (default 42)
     FTES_REPS    repetitions, fastest kept (default 3)
     FTES_QUICK   fast smoke run

   Appends one trajectory record per run to BENCH_frontier.json
   (created on first use) and rewrites results/bench_frontier.csv. *)

module Json = Ftes_util.Json
module Csv = Ftes_util.Csv
module Problem = Ftes_model.Problem
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Archive = Ftes_pareto.Archive
module Cruise_control = Ftes_cc.Cruise_control

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let quick = Sys.getenv_opt "FTES_QUICK" <> None

let n_points = env_int "FTES_POINTS" (if quick then 2_000 else 10_000)

let seed = env_int "FTES_SEED" 42

let reps = max 1 (env_int "FTES_REPS" 3)

(* --- synthetic insertion throughput --- *)

(* Costs, slacks and margins drawn uniformly from fixed ranges; the
   shared design is irrelevant to insertion cost (the archive only
   copies the reference). *)
let synthetic_points design =
  let state = Random.State.make [| seed; n_points |] in
  Array.init n_points (fun _ ->
      { Archive.design;
        cost = 10.0 +. Random.State.float state 90.0;
        slack = Random.State.float state 50.0;
        margin = Random.State.float state 10.0 })

let time_insertions ~eps points =
  let spec = Archive.spec ~eps () in
  let best = ref None in
  for _ = 1 to reps do
    let archive = Archive.create ~spec () in
    let t0 = Unix.gettimeofday () in
    Array.iter (Archive.insert archive) points;
    let wall_s = Unix.gettimeofday () -. t0 in
    match !best with
    | Some (w, _) when w <= wall_s -> ()
    | Some _ | None -> best := Some (wall_s, archive)
  done;
  Option.get !best

(* --- worst-corner reference, as [ftes pareto] computes it --- *)

let reference problem =
  let total = ref 0.0 in
  for j = 0 to Problem.n_library problem - 1 do
    let worst = ref 0.0 in
    for level = 1 to Problem.levels problem j do
      worst := Float.max !worst (Problem.cost problem ~node:j ~level)
    done;
    total := !total +. !worst
  done;
  { Archive.ref_cost = !total +. 1.0; ref_slack = 0.0; ref_margin = 0.0 }

(* --- result files --- *)

let results_dir = "results"

let ensure_results_dir () =
  try Sys.mkdir results_dir 0o755 with Sys_error _ -> ()

let trajectory_path = "BENCH_frontier.json"

let append_trajectory record =
  let existing =
    if Sys.file_exists trajectory_path then begin
      let ic = open_in_bin trajectory_path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Json.of_string text with
      | Ok (Json.List runs) -> runs
      | Ok _ | Error _ -> []
    end
    else []
  in
  let oc = open_out trajectory_path in
  output_string oc (Json.to_string (Json.List (existing @ [ record ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] appended run %d to %s\n%!"
    (List.length existing + 1)
    trajectory_path

let () =
  Printf.printf
    "Frontier benchmark: %d synthetic insertions + one OPT frontier cell\n\
     seed %d, best of %d reps%s\n%!"
    n_points seed reps
    (if quick then " (quick)" else "");
  let problem = Cruise_control.problem () in
  let config = Config.default in
  (* OPT frontier cell + fingerprint check against the plain walk. *)
  let t0 = Unix.gettimeofday () in
  let frontier = Design_strategy.run_frontier ~config problem in
  let frontier_wall = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let opt = Design_strategy.run ~config problem in
  let run_wall = Unix.gettimeofday () -. t0 in
  let design_of (s : Design_strategy.solution) =
    s.Design_strategy.result.Redundancy_opt.design
  in
  let cost_of (s : Design_strategy.solution) =
    s.Design_strategy.result.Redundancy_opt.cost
  in
  let identical =
    match (frontier.Design_strategy.best, opt) with
    | None, None -> true
    | Some fb, Some ob ->
        cost_of fb = cost_of ob && design_of fb = design_of ob
    | Some _, None | None, Some _ -> false
  in
  let stats = Archive.stats frontier.Design_strategy.archive in
  let hv =
    Archive.hypervolume frontier.Design_strategy.archive
      ~reference:(reference problem)
  in
  Printf.printf
    "cc OPT cell: frontier %.4fs vs run %.4fs, %d explored, %d frontier \
     points (%d inserted, %d dominated, %d evicted), hypervolume %.4g\n\
     best fingerprint identical: %b\n%!"
    frontier_wall run_wall frontier.Design_strategy.explored
    stats.Archive.boxes stats.Archive.inserted stats.Archive.dominated
    stats.Archive.evicted hv identical;
  if not identical then
    failwith
      "bench_frontier: run_frontier best diverged from the plain run";
  (* Synthetic insertion throughput, exact and gridded. *)
  let design =
    match opt with
    | Some s -> design_of s
    | None -> failwith "bench_frontier: cruise control has no OPT solution"
  in
  let points = synthetic_points design in
  let exact_wall, exact = time_insertions ~eps:0.0 points in
  let grid_eps = 1.0 in
  let grid_wall, grid = time_insertions ~eps:grid_eps points in
  let rate wall = float_of_int n_points /. Float.max 1e-9 wall in
  let synth_reference =
    { Archive.ref_cost = 100.0; ref_slack = 0.0; ref_margin = 0.0 }
  in
  let exact_hv = Archive.hypervolume exact ~reference:synth_reference in
  let grid_hv = Archive.hypervolume grid ~reference:synth_reference in
  Printf.printf
    "insertions:  exact %.4fs (%.0f pts/s, %d boxes, hv %.4g)\n\
    \             eps %g %.4fs (%.0f pts/s, %d boxes, hv %.4g)\n%!"
    exact_wall (rate exact_wall) (Archive.size exact) exact_hv grid_eps
    grid_wall (rate grid_wall) (Archive.size grid) grid_hv;
  ensure_results_dir ();
  let csv_path = Filename.concat results_dir "bench_frontier.csv" in
  Csv.write_file csv_path
    [ [ "points"; "seed"; "quick"; "exact_wall_s"; "exact_rate";
        "exact_boxes"; "grid_eps"; "grid_wall_s"; "grid_rate"; "grid_boxes";
        "frontier_wall_s"; "run_wall_s"; "explored"; "frontier_points";
        "hypervolume"; "identical" ];
      [ string_of_int n_points;
        string_of_int seed;
        string_of_bool quick;
        Printf.sprintf "%.4f" exact_wall;
        Printf.sprintf "%.0f" (rate exact_wall);
        string_of_int (Archive.size exact);
        Printf.sprintf "%g" grid_eps;
        Printf.sprintf "%.4f" grid_wall;
        Printf.sprintf "%.0f" (rate grid_wall);
        string_of_int (Archive.size grid);
        Printf.sprintf "%.4f" frontier_wall;
        Printf.sprintf "%.4f" run_wall;
        string_of_int frontier.Design_strategy.explored;
        string_of_int stats.Archive.boxes;
        Printf.sprintf "%.6g" hv;
        string_of_bool identical ] ];
  Printf.printf "[csv] wrote %s\n%!" csv_path;
  append_trajectory
    (Json.Object
       [ ("timestamp", Json.Number (Unix.time ()));
         ("points", Json.Number (float_of_int n_points));
         ("seed", Json.Number (float_of_int seed));
         ("quick", Json.Bool quick);
         ("exact_wall_s", Json.Number exact_wall);
         ("exact_boxes", Json.Number (float_of_int (Archive.size exact)));
         ("grid_eps", Json.Number grid_eps);
         ("grid_wall_s", Json.Number grid_wall);
         ("grid_boxes", Json.Number (float_of_int (Archive.size grid)));
         ("frontier_wall_s", Json.Number frontier_wall);
         ("run_wall_s", Json.Number run_wall);
         ("explored", Json.Number (float_of_int frontier.Design_strategy.explored));
         ("frontier_points", Json.Number (float_of_int stats.Archive.boxes));
         ("hypervolume", Json.Number hv);
         ("identical", Json.Bool identical) ]);
  print_endline "bench_frontier: done"
