(* Warm-start what-if benchmark: delta-aware incremental re-optimization
   versus cold re-runs across the whole delta-class ladder.

   For each problem a base walk is recorded once (with its pre-flight
   analysis), then every delta class is applied in turn and answered
   two ways: {e cold} — apply the delta, re-derive the pre-flight and
   re-run the full Fig.5 walk from scratch, exactly what a fresh query
   costs — and {e warm} — [Ftes_core.Design_strategy.rerun], which
   migrates the recorded caches under the delta's invalidation
   footprint and replays the recorded walk.  The two answers must be
   bit-identical (solution floats via %h, design vectors, explored
   count and the full trail); any divergence fails the bench — reuse
   is contractually invisible.

   Environment knobs (shared with the main harness):
     FTES_SEED    root seed (default 42)
     FTES_QUICK   fast smoke run (cc only, 1 repetition per class)
     FTES_REPS    repetitions per delta class (default 3; quick 1)

   Appends one trajectory record (p50/p95 warm-over-cold speedup,
   kept/dropped cache fractions, replay rates) to BENCH_whatif.json and
   rewrites results/bench_whatif.csv. *)

module Json = Ftes_util.Json
module Csv = Ftes_util.Csv
module Prng = Ftes_util.Prng
module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Platform = Ftes_model.Platform
module Design = Ftes_model.Design
module Workload = Ftes_gen.Workload
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Preflight = Ftes_analyze.Preflight
module Delta = Ftes_whatif.Delta
module Reuse = Ftes_whatif.Reuse

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let quick = Sys.getenv_opt "FTES_QUICK" <> None

let seed = env_int "FTES_SEED" 42

let reps = env_int "FTES_REPS" (if quick then 1 else 3)

let ok_exn = function Ok v -> v | Error e -> failwith ("bench_whatif: " ^ e)

(* --- bit-exact fingerprints (mirrors test_whatif.ml) --- *)

let hex = Printf.sprintf "%h"

let ints a = String.concat "," (Array.to_list (Array.map string_of_int a))

let solution_sig = function
  | None -> "none"
  | Some (s : Design_strategy.solution) ->
      let r = s.Design_strategy.result in
      let d = r.Redundancy_opt.design in
      String.concat "|"
        [ hex r.Redundancy_opt.cost;
          hex r.Redundancy_opt.schedule_length;
          hex r.Redundancy_opt.slack;
          hex r.Redundancy_opt.margin;
          string_of_int s.Design_strategy.explored;
          ints d.Design.members;
          ints d.Design.levels;
          ints d.Design.reexecs;
          ints d.Design.mapping ]

let trail_sig trail =
  String.concat ";"
    (List.map
       (fun (st : Design_strategy.step) ->
         Printf.sprintf "%s:%s"
           (ints st.Design_strategy.step_members)
           (match st.Design_strategy.step_verdict with
           | `Schedulable c -> "ok@" ^ hex c
           | `Unschedulable -> "dead"))
       trail)

let recorded_sig (r : Design_strategy.recorded) =
  Printf.sprintf "%s#%d#%s"
    (solution_sig r.Design_strategy.rec_solution)
    r.Design_strategy.rec_explored
    (trail_sig r.Design_strategy.rec_trail)

(* --- the delta ladder ---

   One valid-by-construction delta per class per repetition, scaled by
   a per-repetition jitter so repeats are distinct queries.  Magnitudes
   are interactive nudges (fractions of a percent) — the what-if use
   case is "drag the deadline slider a notch", not "replace the
   workload" — so the warm walk mostly re-traces the recorded
   trajectory and the speedup measures cache migration fidelity rather
   than how far the optimum moved. *)

let delta_of_class prng problem cls =
  let app = problem.Problem.app in
  let jitter lo hi = lo +. ((hi -. lo) *. Prng.float prng 1.0) in
  let lib = Problem.n_library problem in
  let node = Prng.int prng lib in
  let level = 1 + Prng.int prng (Problem.levels problem node) in
  let proc = Prng.int prng (Problem.n_processes problem) in
  match cls with
  | "deadline-set" ->
      Delta.Deadline_set (app.Application.deadline_ms *. jitter 0.995 1.005)
  | "deadline-scale" -> Delta.Deadline_scale (jitter 0.995 1.005)
  | "period-set" ->
      Delta.Period_set (app.Application.period_ms *. jitter 1.0 1.01)
  | "period-scale" -> Delta.Period_scale (jitter 1.0 1.01)
  | "gamma-set" -> Delta.Gamma_set (app.Application.gamma *. jitter 0.99 1.0)
  | "wcet-scale" -> Delta.Wcet_scale { node; factor = jitter 0.995 1.005 }
  | "ser-scale" ->
      (* Scaling down always preserves [0,1) and the level monotonicity. *)
      Delta.Ser_scale { node; factor = jitter 0.99 1.0 }
  | "hversion-cost-set" ->
      (* Nudge the cell towards its upper neighbour: stays inside the
         monotone band (lo, hi) whatever the neighbours are. *)
      let c = Problem.cost problem ~node ~level in
      let hi =
        if level < Problem.levels problem node then
          Problem.cost problem ~node ~level:(level + 1)
        else c *. 1.5
      in
      Delta.Hversion_cost_set
        { node; level; cost = c +. ((hi -. c) *. jitter 0.01 0.05) }
  | "hversion-wcet-set" ->
      let w = Problem.wcet problem ~node ~level ~proc in
      Delta.Hversion_wcet_set
        { node; level; proc; wcet_ms = w *. jitter 0.995 1.005 }
  | "hversion-pfail-set" ->
      (* Shrink towards the next level's pfail: stays within the
         monotone band whatever the neighbours are. *)
      let p = Problem.pfail problem ~node ~level ~proc in
      let lo =
        if level < Problem.levels problem node then
          Problem.pfail problem ~node ~level:(level + 1) ~proc
        else p *. 0.5
      in
      Delta.Hversion_pfail_set
        { node; level; proc; pfail = lo +. ((p -. lo) *. jitter 0.95 1.0) }
  | "node-add" ->
      let src = Problem.node problem (Prng.int prng lib) in
      Delta.Node_add
        (Platform.node_type
           ~name:(src.Platform.node_name ^ "'")
           ~versions:src.Platform.versions)
  | "node-remove" ->
      if lib < 2 then Delta.Deadline_scale (jitter 0.9 1.1)
      else Delta.Node_remove node
  | "kmax-set" -> Delta.Kmax_set (8 + Prng.int prng 5)
  | other -> failwith ("bench_whatif: unknown delta class " ^ other)

(* --- problems ---

   The generator's default deadlines are loose enough that the Fig.5
   walk stops after a handful of architectures, which makes the cold
   run too cheap to measure reuse against.  Tightening the deadline to
   ~60% (and a harsher SER) forces deep escalation ladders and longer
   walks — the regime where a resident warm session actually matters. *)

let synthetic ~index ~n ~lib ~tighten =
  let params =
    { Workload.default_params with Workload.n_library = lib; levels = 3 }
  in
  let spec = Workload.generate_spec ~params ~seed ~index ~n_processes:n () in
  let p = Workload.problem_of_spec ~params { Workload.ser = 1e-9; hpd = 0.5 } spec in
  ok_exn (Delta.apply p (Delta.Deadline_scale tighten))

let problems =
  ("cc", Ftes_cc.Cruise_control.problem ())
  :: (if quick then []
      else
        [ ("syn-24", synthetic ~index:3 ~n:24 ~lib:4 ~tighten:0.62);
          ("syn-20", synthetic ~index:4 ~n:20 ~lib:5 ~tighten:0.6) ])

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type row = {
  row_problem : string;
  row_class : string;
  row_cold_s : float;
  row_warm_s : float;
  row_reuse : Reuse.t;
}

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* The ≥5x target applies to single-field deltas whose footprint admits
   reuse.  Period, gamma and kmax edits rewrite the re-execution budget
   every cached evaluation baked its design against — [Delta.footprint]
   classifies them [`Drop] — and a processor addition opens genuinely
   unexplored architectures; for those the warm path degrades to a cold
   walk over migrated SFP tables by construction, and the bench reports
   them separately rather than pretending they speed up. *)
let reuse_eligible = function
  | "deadline-set" | "deadline-scale" | "wcet-scale" | "ser-scale"
  | "hversion-cost-set" | "hversion-wcet-set" | "hversion-pfail-set"
  | "node-remove" ->
      true
  | _ -> false

let () =
  Printf.printf
    "What-if warm-start benchmark: rerun (delta-aware) vs cold re-run\n\
     %d delta classes x %d repetition(s) over %d problem(s), seed %d%s\n%!"
    (List.length Delta.class_names)
    reps (List.length problems) seed
    (if quick then " (quick)" else "");
  let config = Config.default in
  let prng = Prng.create seed in
  let divergences = ref 0 in
  let rows = ref [] in
  List.iter
    (fun (pname, problem) ->
      (* Record the base walk once, pre-flight attached — the resident
         session state a warm query starts from. *)
      let preflight = Preflight.run ~kmax:config.Config.kmax problem in
      let base, base_s =
        time (fun () -> Design_strategy.run_recorded ~preflight ~config problem)
      in
      Printf.printf "%s: base walk %.3fs (%d architectures)\n%!" pname base_s
        base.Design_strategy.rec_explored;
      List.iter
        (fun cls ->
          for _ = 1 to reps do
            let delta = delta_of_class prng problem cls in
            (* Warm: migrate + replay from the recorded state. *)
            let warm_result, warm_s =
              time (fun () -> Design_strategy.rerun ~from:base delta)
            in
            let warm, reuse =
              match warm_result with
              | Ok wr -> wr
              | Error e ->
                  failwith
                    (Printf.sprintf "bench_whatif: %s/%s rejected: %s" pname
                       cls e)
            in
            (* Cold: what a fresh query costs — apply, re-derive the
               pre-flight, walk from scratch. *)
            let cold, cold_s =
              time (fun () ->
                  let perturbed = ok_exn (Delta.apply problem delta) in
                  let kmax =
                    match Delta.kmax_override delta with
                    | Some k -> k
                    | None -> config.Config.kmax
                  in
                  let config = Config.with_kmax kmax config in
                  let preflight = Preflight.run ~kmax perturbed in
                  Design_strategy.run_recorded ~preflight ~config perturbed)
            in
            let want = recorded_sig cold and got = recorded_sig warm in
            if want <> got then begin
              incr divergences;
              Printf.printf "DIVERGENCE %s/%s:\n  cold %s\n  warm %s\n%!"
                pname cls want got
            end;
            rows :=
              { row_problem = pname;
                row_class = cls;
                row_cold_s = cold_s;
                row_warm_s = warm_s;
                row_reuse = reuse }
              :: !rows
          done)
        Delta.class_names)
    problems;
  let rows = List.rev !rows in
  if !divergences > 0 then
    failwith
      (Printf.sprintf
         "bench_whatif: %d of %d warm reruns diverged from cold re-runs — \
          cache migration leaked into the results"
         !divergences (List.length rows));

  (* Speedups. *)
  let speedup r = r.row_cold_s /. Float.max 1e-9 r.row_warm_s in
  let sorted = Array.of_list (List.map speedup rows) in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50 in
  let p95 = percentile sorted 0.95 in
  let eligible =
    Array.of_list
      (List.filter_map
         (fun r -> if reuse_eligible r.row_class then Some (speedup r) else None)
         rows)
  in
  Array.sort compare eligible;
  let p50_eligible = percentile eligible 0.50 in
  let kept_frac num den =
    let k = List.fold_left (fun acc r -> acc + num r.row_reuse) 0 rows in
    let d = List.fold_left (fun acc r -> acc + den r.row_reuse) 0 rows in
    float_of_int k /. float_of_int (max 1 (k + d))
  in
  let sfp_rate = kept_frac (fun r -> r.Reuse.sfp_kept) (fun r -> r.Reuse.sfp_dropped) in
  let eval_rate =
    kept_frac (fun r -> r.Reuse.evals_kept) (fun r -> r.Reuse.evals_dropped)
  in
  let replay_rate =
    let k = List.fold_left (fun acc r -> acc + r.row_reuse.Reuse.steps_replayed) 0 rows in
    let d = List.fold_left (fun acc r -> acc + r.row_reuse.Reuse.steps_total) 0 rows in
    float_of_int k /. float_of_int (max 1 d)
  in
  Printf.printf
    "%d warm reruns, 0 fingerprint divergences\n\
     warm-over-cold speedup: p50 %.1fx over reuse-eligible single-field \
     deltas (%d/%d rows);\n\
     \  full ladder incl. drop-footprint classes: p50 %.1fx, p95 %.1fx \
     (min %.1fx, max %.1fx)\n\
     kept across migrations: %.0f%% SFP tables, %.0f%% evaluations; \
     %.0f%% of trail steps replayed\n%!"
    (List.length rows) p50_eligible (Array.length eligible) (List.length rows)
    p50 p95 sorted.(0)
    (sorted.(Array.length sorted - 1))
    (100. *. sfp_rate) (100. *. eval_rate) (100. *. replay_rate);
  List.iter
    (fun cls ->
      let s =
        Array.of_list
          (List.filter_map
             (fun r -> if r.row_class = cls then Some (speedup r) else None)
             rows)
      in
      Array.sort compare s;
      Printf.printf "  %-20s p50 %4.1fx%s\n" cls (percentile s 0.50)
        (if reuse_eligible cls then "" else "  (drop-footprint)"))
    Delta.class_names;
  if p50_eligible < 5.0 then
    Printf.printf
      "WARNING: reuse-eligible p50 speedup %.1fx below the 5x target on this \
       machine\n%!"
      p50_eligible;

  (* results/bench_whatif.csv: one row per delta. *)
  let results_dir = "results" in
  (try Sys.mkdir results_dir 0o755 with Sys_error _ -> ());
  let csv_path = Filename.concat results_dir "bench_whatif.csv" in
  Csv.write_file csv_path
    ([ "problem"; "class"; "cold_s"; "warm_s"; "speedup"; "sfp_kept";
       "sfp_dropped"; "evals_kept"; "evals_dropped"; "probes_kept";
       "probes_dropped"; "steps_replayed"; "steps_total"; "preflight_reused";
       "fingerprint" ]
    :: List.map
         (fun r ->
           [ r.row_problem;
             r.row_class;
             Printf.sprintf "%.6f" r.row_cold_s;
             Printf.sprintf "%.6f" r.row_warm_s;
             Printf.sprintf "%.2f" (speedup r);
             string_of_int r.row_reuse.Reuse.sfp_kept;
             string_of_int r.row_reuse.Reuse.sfp_dropped;
             string_of_int r.row_reuse.Reuse.evals_kept;
             string_of_int r.row_reuse.Reuse.evals_dropped;
             string_of_int r.row_reuse.Reuse.probes_kept;
             string_of_int r.row_reuse.Reuse.probes_dropped;
             string_of_int r.row_reuse.Reuse.steps_replayed;
             string_of_int r.row_reuse.Reuse.steps_total;
             string_of_bool r.row_reuse.Reuse.preflight_reused;
             "identical" ])
         rows);
  Printf.printf "[csv] wrote %s\n%!" csv_path;

  (* BENCH_whatif.json: append this run to the trajectory (same
     timestamp/seed/quick schema as BENCH_serve.json). *)
  let trajectory_path = "BENCH_whatif.json" in
  let existing =
    if Sys.file_exists trajectory_path then begin
      let ic = open_in_bin trajectory_path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Json.of_string text with
      | Ok (Json.List runs) -> runs
      | Ok _ | Error _ -> []
    end
    else []
  in
  let num v = Json.Number v in
  let int v = Json.Number (float_of_int v) in
  let record =
    Json.Object
      [ ("timestamp", num (Unix.time ()));
        ("seed", int seed);
        ("quick", Json.Bool quick);
        ("problems", int (List.length problems));
        ("classes", int (List.length Delta.class_names));
        ("reps", int reps);
        ("deltas", int (List.length rows));
        ("divergences", int !divergences);
        ( "speedup",
          Json.Object
            [ ("p50_single_field", num p50_eligible);
              ("p50", num p50);
              ("p95", num p95);
              ("min", num sorted.(0));
              ("max", num sorted.(Array.length sorted - 1)) ] );
        ( "reuse",
          Json.Object
            [ ("sfp_kept_rate", num sfp_rate);
              ("evals_kept_rate", num eval_rate);
              ("trail_replay_rate", num replay_rate) ] ) ]
  in
  let oc = open_out trajectory_path in
  output_string oc (Json.to_string (Json.List (existing @ [ record ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] appended run %d to %s\n%!"
    (List.length existing + 1)
    trajectory_path
