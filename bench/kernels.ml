(* Old-vs-new kernel benchmark: runs one OPT experiment cell twice on
   the same seed — once under the retained reference kernels, once
   under the incremental ones — and reports the combined wall time of
   the two hot spans (opt/evaluate + sched/schedule), the evaluation
   counts and the allocation volume.  The per-application costs of the
   two runs must be identical bit for bit (the kernels promise byte
   identity), so the comparison doubles as an end-to-end fingerprint
   check and the program exits non-zero on any divergence.

   Environment knobs (shared with the main harness):
     FTES_APPS   population size (default 24; 8 under FTES_QUICK)
     FTES_SEED   root seed (default 42)
     FTES_QUICK  fast smoke run

   Appends one trajectory record per run to BENCH_kernels.json (created
   on first use) and rewrites results/bench_kernels.csv, so later PRs
   can track kernel regressions against this baseline. *)

module Kernel = Ftes_util.Kernel
module Json = Ftes_util.Json
module Csv = Ftes_util.Csv
module Config = Ftes_core.Config
module Redundancy_opt = Ftes_core.Redundancy_opt
module Synthetic = Ftes_exp.Synthetic
module Workload = Ftes_gen.Workload
module Span = Ftes_obs.Span
module Metrics = Ftes_obs.Metrics

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let quick = Sys.getenv_opt "FTES_QUICK" <> None

let apps = env_int "FTES_APPS" (if quick then 8 else 24)

let seed = env_int "FTES_SEED" 42

(* Each mode runs [reps] times and reports its fastest repetition —
   the cell outputs are deterministic, so repetitions only reduce
   scheduler/GC timing noise. *)
let reps = max 1 (env_int "FTES_REPS" 3)

let counter name snapshot =
  Option.value ~default:0 (List.assoc_opt name snapshot.Metrics.counters)

type mode_run = {
  costs : float option array;
  wall_s : float;
  alloc_words : float;
  eval_ns : int;
  eval_alloc_b : int;
  sched_ns : int;
  sched_alloc_b : int;
  evaluates : int;
  schedules : int;
  snapshot : Metrics.snapshot;
}

let run_mode mode specs key =
  Kernel.set mode;
  Metrics.reset ();
  Span.configure ~aggregate:true ();
  Gc.compact ();
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let cell = Synthetic.run_cell ~config:Config.default ~specs key in
  let wall_s = Unix.gettimeofday () -. t0 in
  let alloc_words = (Gc.allocated_bytes () -. alloc0) /. 8.0 in
  Span.disable ();
  let snapshot = Metrics.snapshot () in
  { costs = cell.Synthetic.costs;
    wall_s;
    alloc_words;
    eval_ns = counter "span.opt/evaluate.ns" snapshot;
    eval_alloc_b = counter "span.opt/evaluate.alloc_b" snapshot;
    sched_ns = counter "span.sched/schedule.ns" snapshot;
    sched_alloc_b = counter "span.sched/schedule.alloc_b" snapshot;
    evaluates = counter "span.opt/evaluate.count" snapshot;
    schedules = counter "span.sched/schedule.count" snapshot;
    snapshot }

let best_of mode specs key =
  let best = ref None in
  for _ = 1 to reps do
    let r = run_mode mode specs key in
    (match !best with
    | Some b ->
        if b.costs <> r.costs then
          failwith "bench_kernels: nondeterministic cell outputs across reps"
    | None -> ());
    match !best with
    | Some b when b.eval_ns + b.sched_ns <= r.eval_ns + r.sched_ns -> ()
    | Some _ | None -> best := Some r
  done;
  Option.get !best

let results_dir = "results"

let ensure_results_dir () =
  try Sys.mkdir results_dir 0o755 with Sys_error _ -> ()

let json_of_mode label (r : mode_run) =
  ( label,
    Json.Object
      [ ("wall_s", Json.Number r.wall_s);
        ("alloc_words", Json.Number r.alloc_words);
        ("eval_ns", Json.Number (float_of_int r.eval_ns));
        ("sched_ns", Json.Number (float_of_int r.sched_ns));
        ("evaluates", Json.Number (float_of_int r.evaluates));
        ("schedules", Json.Number (float_of_int r.schedules)) ] )

let trajectory_path = "BENCH_kernels.json"

let append_trajectory record =
  let existing =
    if Sys.file_exists trajectory_path then begin
      let ic = open_in_bin trajectory_path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Json.of_string text with
      | Ok (Json.List runs) -> runs
      | Ok _ | Error _ -> []
    end
    else []
  in
  let oc = open_out trajectory_path in
  output_string oc (Json.to_string (Json.List (existing @ [ record ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] appended run %d to %s\n%!"
    (List.length existing + 1)
    trajectory_path

let () =
  Printf.printf
    "Kernel benchmark: reference vs incremental evaluation kernels\n\
     population: %d applications, seed %d, best of %d reps%s\n%!"
    apps seed reps
    (if quick then " (quick)" else "");
  let specs = Workload.paper_suite ~count:apps ~seed () in
  let key = { Synthetic.ser = 1e-11; hpd = 0.25; policy = Config.Optimize } in
  let reference = best_of Kernel.Reference specs key in
  let incremental = best_of Kernel.Incremental specs key in
  Kernel.set Kernel.Incremental;
  let identical = reference.costs = incremental.costs in
  let combined r = r.eval_ns + r.sched_ns in
  let speedup =
    float_of_int (combined reference)
    /. float_of_int (max 1 (combined incremental))
  in
  let wall_speedup = reference.wall_s /. Float.max 1e-9 incremental.wall_s in
  let alloc_ratio =
    reference.alloc_words /. Float.max 1.0 incremental.alloc_words
  in
  let kernel_counters =
    List.filter
      (fun (name, _) -> String.starts_with ~prefix:"kernel." name)
      incremental.snapshot.Metrics.counters
  in
  Printf.printf
    "reference:   %.2fs wall, evaluate %d calls / %.3fs, schedule %d calls / \
     %.3fs, %.0fM words\n\
     incremental: %.2fs wall, evaluate %d calls / %.3fs, schedule %d calls / \
     %.3fs, %.0fM words\n\
     combined hot-span speedup: %.2fx (wall %.2fx, alloc %.2fx)\n\
     per-app costs identical: %b\n%!"
    reference.wall_s reference.evaluates
    (float_of_int reference.eval_ns /. 1e9)
    reference.schedules
    (float_of_int reference.sched_ns /. 1e9)
    (reference.alloc_words /. 1e6) incremental.wall_s incremental.evaluates
    (float_of_int incremental.eval_ns /. 1e9)
    incremental.schedules
    (float_of_int incremental.sched_ns /. 1e9)
    (incremental.alloc_words /. 1e6)
    speedup wall_speedup alloc_ratio identical;
  Printf.printf
    "span allocation: evaluate %.1fM -> %.1fM bytes, schedule %.1fM -> %.1fM \
     bytes\n%!"
    (float_of_int reference.eval_alloc_b /. 1e6)
    (float_of_int incremental.eval_alloc_b /. 1e6)
    (float_of_int reference.sched_alloc_b /. 1e6)
    (float_of_int incremental.sched_alloc_b /. 1e6);
  List.iter
    (fun (name, v) -> Printf.printf "  %s = %d\n%!" name v)
    kernel_counters;
  if not identical then
    failwith
      "bench_kernels: incremental kernels diverged from the reference \
       outputs";
  if speedup < 2.0 then
    Printf.printf
      "warning: combined hot-span speedup %.2fx below the 2x target\n%!"
      speedup;
  ensure_results_dir ();
  let csv_path = Filename.concat results_dir "bench_kernels.csv" in
  Csv.write_file csv_path
    [ [ "apps"; "seed"; "quick"; "ref_wall_s"; "inc_wall_s"; "wall_speedup";
        "ref_eval_ns"; "inc_eval_ns"; "ref_sched_ns"; "inc_sched_ns";
        "combined_speedup"; "ref_evaluates"; "inc_evaluates";
        "ref_alloc_words"; "inc_alloc_words"; "alloc_ratio"; "identical" ];
      [ string_of_int apps;
        string_of_int seed;
        string_of_bool quick;
        Printf.sprintf "%.4f" reference.wall_s;
        Printf.sprintf "%.4f" incremental.wall_s;
        Printf.sprintf "%.2f" wall_speedup;
        string_of_int reference.eval_ns;
        string_of_int incremental.eval_ns;
        string_of_int reference.sched_ns;
        string_of_int incremental.sched_ns;
        Printf.sprintf "%.2f" speedup;
        string_of_int reference.evaluates;
        string_of_int incremental.evaluates;
        Printf.sprintf "%.0f" reference.alloc_words;
        Printf.sprintf "%.0f" incremental.alloc_words;
        Printf.sprintf "%.2f" alloc_ratio;
        string_of_bool identical ] ];
  Printf.printf "[csv] wrote %s\n%!" csv_path;
  append_trajectory
    (Json.Object
       ([ ("timestamp", Json.Number (Unix.time ()));
          ("apps", Json.Number (float_of_int apps));
          ("seed", Json.Number (float_of_int seed));
          ("quick", Json.Bool quick);
          ("combined_speedup", Json.Number speedup);
          ("wall_speedup", Json.Number wall_speedup);
          ("alloc_ratio", Json.Number alloc_ratio);
          ("identical", Json.Bool identical);
          json_of_mode "reference" reference;
          json_of_mode "incremental" incremental ]
       @ List.map
           (fun (name, v) -> (name, Json.Number (float_of_int v)))
           kernel_counters));
  print_endline "bench_kernels: done"
