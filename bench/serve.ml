(* Design-service load benchmark: a mixed request stream through the
   resident daemon versus one-shot execution of every request.

   The stream cycles analyze / optimize (all three strategies) /
   pareto / exact requests over the built-in examples and a handful of
   synthetic instances, under rotating slack and bus policies.  Every
   request is executed twice: {e cold} — a fresh one-shot run on the
   shared [Ftes_driver.Exec] path, exactly what a CLI subcommand does —
   and {e warm} — through [Ftes_driver.Daemon.run_lines] in
   serve-sized batches over one shared cache registry, on a sequential
   pool so the warm/cold ratio isolates cache sharing rather than
   conflating it with parallel speedup.  The response fingerprint
   (verdict, id and every payload byte) must match between the two
   modes on all requests; any divergence fails the bench — the
   daemon's warm caches are contractually invisible.

   Environment knobs (shared with the main harness):
     FTES_SEED      root seed (default 42)
     FTES_QUICK     fast smoke run (24 requests instead of 240)
     FTES_REQUESTS  override the request count

   Appends one trajectory record (tail latencies, throughputs, cache
   hit rates, warm-over-cold factor) to BENCH_serve.json and rewrites
   results/bench_serve.csv. *)

module Json = Ftes_util.Json
module Csv = Ftes_util.Csv
module Scheduler = Ftes_sched.Scheduler
module Bus = Ftes_sched.Bus
module Workload = Ftes_gen.Workload
module Redundancy_opt = Ftes_core.Redundancy_opt
module Sfp_cache = Ftes_par.Sfp_cache
module Pool = Ftes_par.Pool
module Objective = Ftes_pareto.Objective
module Request = Ftes_driver.Request
module Response = Ftes_driver.Response
module Exec = Ftes_driver.Exec
module Daemon = Ftes_driver.Daemon

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let quick = Sys.getenv_opt "FTES_QUICK" <> None

let seed = env_int "FTES_SEED" 42

let n_requests = env_int "FTES_REQUESTS" (if quick then 24 else 240)

let max_batch = 16

let ok_exn = function Ok v -> v | Error e -> failwith ("bench_serve: " ^ e)

(* --- the request mix --- *)

(* Synthetic instances: a few distinct problems so repeats actually
   exercise the warm cache, sized for the exhaustive-free commands. *)
let synthetic =
  let make lib levels n index =
    let params =
      { Workload.default_params with Workload.n_library = lib; levels }
    in
    let spec = Workload.generate_spec ~params ~seed ~index ~n_processes:n () in
    Workload.problem_of_spec ~params { Workload.ser = 1e-10; hpd = 0.5 } spec
  in
  Array.init 4 (make 2 3 6)

(* Tiny instances within the exact optimizer's comfort zone. *)
let tiny =
  let make index =
    let params =
      { Workload.default_params with Workload.n_library = 2; levels = 3 }
    in
    let spec = Workload.generate_spec ~params ~seed ~index ~n_processes:4 () in
    Workload.problem_of_spec ~params { Workload.ser = 1e-10; hpd = 0.5 } spec
  in
  Array.init 2 make

let slacks = [| Scheduler.Shared; Scheduler.Conservative; Scheduler.Dedicated |]

let buses = [| Bus.Fcfs; Bus.Tdma { slot_ms = 2.0 } |]

let strategies = [| "opt"; "min"; "max" |]

let pareto_all =
  Request.Pareto { eps = 0.0; objectives = Objective.all; ref_cost = None }

let request_of_index i =
  let slack = slacks.(i mod Array.length slacks) in
  let bus = buses.(i mod Array.length buses) in
  let strategy = strategies.(i mod Array.length strategies) in
  let target k =
    match k mod 4 with
    | 0 -> `Example "fig1"
    | 1 -> `Example "fig3"
    | 2 -> `Example "cc"
    | _ -> `Problem synthetic.(k mod Array.length synthetic)
  in
  let command, problem =
    match i mod 10 with
    | 0 | 1 | 2 -> (Request.Analyze, target (i / 3))
    | 3 | 4 | 5 | 6 -> (Request.Optimize, target (i / 2))
    | 7 ->
        ( pareto_all,
          if i mod 20 = 7 then `Example "fig1" else `Example "cc" )
    | 8 ->
        ( Request.Exact { limit = None },
          if i mod 20 = 8 then `Example "fig1" else `Example "fig3" )
    | _ ->
        ( Request.Exact { limit = None },
          `Problem tiny.(i mod Array.length tiny) )
  in
  ok_exn
    (Request.make
       ~id:(Printf.sprintf "req-%03d" i)
       ~strategy ~slack ~bus command problem)

(* --- the two passes --- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One-shot: what a CLI subcommand does — fresh run, no shared cache. *)
let one_shot (req : Request.t) =
  let outcome = Exec.run req in
  { Response.id = req.Request.id;
    seq = 0;
    verdict = Exec.verdict outcome;
    payload = Exec.payload req outcome;
    error = None;
    telemetry = None }

let rec batches n = function
  | [] -> []
  | lines ->
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | line :: rest -> split (k - 1) (line :: acc) rest
      in
      let batch, rest = split n [] lines in
      batch :: batches n rest

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let tail_latencies walls =
  let sorted = Array.of_list walls in
  Array.sort compare sorted;
  (percentile sorted 0.50, percentile sorted 0.95, percentile sorted 0.99)

let () =
  Printf.printf
    "Design-service benchmark: daemon (warm, shared caches) vs one-shot\n\
     %d requests, seed %d%s\n%!"
    n_requests seed
    (if quick then " (quick)" else "");
  let requests = List.init n_requests request_of_index in
  let lines = List.map Request.to_string requests in

  (* Cold pass: every request a fresh one-shot execution. *)
  let cold, cold_total_s =
    time (fun () -> List.map (fun req -> time (fun () -> one_shot req)) requests)
  in

  (* Warm pass: the daemon loop over one shared cache registry. *)
  let caches = Daemon.create_caches () in
  let evals_before = Redundancy_opt.eval_stats () in
  let sfp_before = Sfp_cache.totals () in
  let warm, warm_total_s =
    time (fun () ->
        let _, rev =
          List.fold_left
            (fun (seq, acc) batch ->
              let responses =
                Daemon.run_lines ~pool:Pool.sequential ~caches ~first_seq:seq
                  batch
              in
              (seq + List.length responses, List.rev_append responses acc))
            (0, []) (batches max_batch lines)
        in
        List.rev rev)
  in
  let evals_after = Redundancy_opt.eval_stats () in
  let sfp_after = Sfp_cache.totals () in

  (* The fingerprint check: warm caches must be invisible. *)
  if List.length warm <> n_requests then
    failwith "bench_serve: the daemon dropped or duplicated responses";
  let divergences =
    List.fold_left
      (fun count ((one_shot_resp, _), daemon_resp) ->
        let want = Response.fingerprint one_shot_resp in
        let got = Response.fingerprint daemon_resp in
        if want = got then count
        else begin
          Printf.printf "DIVERGENCE %s:\n  one-shot %s\n  daemon   %s\n%!"
            daemon_resp.Response.id want got;
          count + 1
        end)
      0
      (List.combine cold warm)
  in
  if divergences > 0 then
    failwith
      (Printf.sprintf
         "bench_serve: %d of %d daemon responses diverged from one-shot \
          execution — cache sharing leaked into the results"
         divergences n_requests);
  List.iter
    (fun r ->
      if r.Response.verdict = Response.Failed then
        failwith
          (Printf.sprintf "bench_serve: request %s failed: %s" r.Response.id
             (Option.value ~default:"?" r.Response.error)))
    warm;

  (* Latencies: cold from the harness clock, warm from the daemon's own
     per-request telemetry. *)
  let cold_walls = List.map snd cold in
  let warm_walls =
    List.map
      (fun r ->
        match r.Response.telemetry with
        | Some t -> float_of_int t.Response.wall_ns *. 1e-9
        | None -> failwith "bench_serve: daemon response without telemetry")
      warm
  in
  let c50, c95, c99 = tail_latencies cold_walls in
  let w50, w95, w99 = tail_latencies warm_walls in
  let cold_rps = float_of_int n_requests /. cold_total_s in
  let warm_rps = float_of_int n_requests /. warm_total_s in
  let factor = warm_rps /. cold_rps in
  let registry_hits = Daemon.cache_hits caches in
  let registry_misses = Daemon.cache_misses caches in
  let registry_rate =
    float_of_int registry_hits
    /. float_of_int (max 1 (registry_hits + registry_misses))
  in
  let eval_hits = evals_after.Redundancy_opt.hits - evals_before.Redundancy_opt.hits in
  let eval_misses =
    evals_after.Redundancy_opt.misses - evals_before.Redundancy_opt.misses
  in
  let eval_rate =
    float_of_int eval_hits /. float_of_int (max 1 (eval_hits + eval_misses))
  in
  let sfp_hits = sfp_after.Sfp_cache.total_hits - sfp_before.Sfp_cache.total_hits in
  let sfp_misses =
    sfp_after.Sfp_cache.total_misses - sfp_before.Sfp_cache.total_misses
  in
  Printf.printf
    "cold (one-shot): %.2fs total, %.1f req/s — p50 %.4fs p95 %.4fs p99 %.4fs\n\
     warm (daemon):   %.2fs total, %.1f req/s — p50 %.4fs p95 %.4fs p99 %.4fs\n\
     warm-over-cold throughput factor: %.2fx\n\
     cache registry: %d problem buckets, %d hits / %d misses (%.0f%% reuse)\n\
     candidate evaluations (warm pass): %d hits / %d misses (%.0f%% hit rate)\n\
     SFP node tables (warm pass): %d hits / %d misses\n\
     fingerprints: %d/%d identical\n%!"
    cold_total_s cold_rps c50 c95 c99 warm_total_s warm_rps w50 w95 w99 factor
    (Daemon.cache_problems caches)
    registry_hits registry_misses (100.0 *. registry_rate) eval_hits
    eval_misses (100.0 *. eval_rate) sfp_hits sfp_misses
    (n_requests - divergences)
    n_requests;

  (* results/bench_serve.csv: one row per request. *)
  let results_dir = "results" in
  (try Sys.mkdir results_dir 0o755 with Sys_error _ -> ());
  let rows =
    List.map2
      (fun (req, (_, cold_wall_s)) (daemon_resp, warm_wall_s) ->
        [ daemon_resp.Response.id;
          Request.command_name req.Request.command;
          req.Request.strategy;
          req.Request.source;
          Response.verdict_name daemon_resp.Response.verdict;
          Printf.sprintf "%.6f" cold_wall_s;
          Printf.sprintf "%.6f" warm_wall_s;
          "identical" ])
      (List.combine requests cold)
      (List.combine warm warm_walls)
  in
  let csv_path = Filename.concat results_dir "bench_serve.csv" in
  Csv.write_file csv_path
    ([ "id"; "command"; "strategy"; "subject"; "verdict"; "cold_wall_s";
       "warm_wall_s"; "fingerprint" ]
    :: rows);
  Printf.printf "[csv] wrote %s\n%!" csv_path;

  (* BENCH_serve.json: append this run to the trajectory. *)
  let trajectory_path = "BENCH_serve.json" in
  let existing =
    if Sys.file_exists trajectory_path then begin
      let ic = open_in_bin trajectory_path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Json.of_string text with
      | Ok (Json.List runs) -> runs
      | Ok _ | Error _ -> []
    end
    else []
  in
  let num v = Json.Number v in
  let int v = Json.Number (float_of_int v) in
  let pass total_s rps (p50, p95, p99) =
    Json.Object
      [ ("total_s", num total_s);
        ("requests_per_s", num rps);
        ("p50_s", num p50);
        ("p95_s", num p95);
        ("p99_s", num p99) ]
  in
  let record =
    Json.Object
      [ ("timestamp", num (Unix.time ()));
        ("seed", int seed);
        ("quick", Json.Bool quick);
        ("requests", int n_requests);
        ("max_batch", int max_batch);
        ("divergences", int divergences);
        ("cold", pass cold_total_s cold_rps (c50, c95, c99));
        ("warm", pass warm_total_s warm_rps (w50, w95, w99));
        ("warm_over_cold_throughput", num factor);
        ( "cache_registry",
          Json.Object
            [ ("problems", int (Daemon.cache_problems caches));
              ("hits", int registry_hits);
              ("misses", int registry_misses);
              ("hit_rate", num registry_rate) ] );
        ( "evals",
          Json.Object
            [ ("hits", int eval_hits);
              ("misses", int eval_misses);
              ("hit_rate", num eval_rate) ] );
        ( "sfp_cache",
          Json.Object [ ("hits", int sfp_hits); ("misses", int sfp_misses) ]
        ) ]
  in
  let oc = open_out trajectory_path in
  output_string oc (Json.to_string (Json.List (existing @ [ record ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] appended run %d to %s\n%!"
    (List.length existing + 1)
    trajectory_path
