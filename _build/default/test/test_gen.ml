(* Tests for the synthetic workload generators (Section 7 recipe). *)

module Dag_gen = Ftes_gen.Dag_gen
module Platform_gen = Ftes_gen.Platform_gen
module Workload = Ftes_gen.Workload
module Task_graph = Ftes_model.Task_graph
module Platform = Ftes_model.Platform
module Problem = Ftes_model.Problem
module Prng = Ftes_util.Prng

let check_float = Alcotest.(check (float 1e-9))

(* --- Dag_gen --- *)

let test_dag_size () =
  let g = Dag_gen.generate (Prng.create 1) (Dag_gen.default_params ~n:20) in
  Alcotest.(check int) "20 processes" 20 (Task_graph.n g)

let test_dag_deterministic () =
  let gen seed = Dag_gen.generate (Prng.create seed) (Dag_gen.default_params ~n:15) in
  let a = gen 7 and b = gen 7 in
  Alcotest.(check int) "same edge count" (Task_graph.n_edges a) (Task_graph.n_edges b);
  Alcotest.(check bool) "same edges" true
    (List.map (fun (e : Task_graph.edge) -> (e.src, e.dst)) (Task_graph.edges a)
    = List.map (fun (e : Task_graph.edge) -> (e.src, e.dst)) (Task_graph.edges b))

let test_dag_seed_sensitivity () =
  let gen seed = Dag_gen.generate (Prng.create seed) (Dag_gen.default_params ~n:15) in
  let edges g =
    List.map (fun (e : Task_graph.edge) -> (e.src, e.dst)) (Task_graph.edges g)
  in
  Alcotest.(check bool) "different seeds differ" false (edges (gen 1) = edges (gen 2))

let test_dag_connected_beyond_first_layer () =
  (* Every non-source process has at least one predecessor by
     construction; equivalently, the number of sources is bounded by the
     first layer's width. *)
  let params = Dag_gen.default_params ~n:25 in
  let g = Dag_gen.generate (Prng.create 3) params in
  Alcotest.(check bool) "few sources" true
    (List.length (Task_graph.sources g) <= params.Dag_gen.width + 1)

let test_dag_transmission_range () =
  let params = Dag_gen.default_params ~n:20 in
  let lo, hi = params.Dag_gen.transmission_ms_range in
  let g = Dag_gen.generate (Prng.create 4) params in
  List.iter
    (fun (e : Task_graph.edge) ->
      Alcotest.(check bool) "transmission in range" true
        (e.transmission_ms >= lo && e.transmission_ms <= hi))
    (Task_graph.edges g)

let test_dag_validation () =
  let invalid msg f =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  invalid "Dag_gen.generate: n must be positive" (fun () ->
      Dag_gen.generate (Prng.create 1) { (Dag_gen.default_params ~n:5) with Dag_gen.n = 0 });
  invalid "Dag_gen.generate: width must be positive" (fun () ->
      Dag_gen.generate (Prng.create 1)
        { (Dag_gen.default_params ~n:5) with Dag_gen.width = 0 });
  invalid "Dag_gen.generate: bad transmission range" (fun () ->
      Dag_gen.generate (Prng.create 1)
        { (Dag_gen.default_params ~n:5) with Dag_gen.transmission_ms_range = (2.0, 1.0) })

(* --- Platform_gen --- *)

let sample_node ?(hpd = 0.25) ?(ser = 1e-11) () =
  let tech = Platform_gen.tech ~ser_per_cycle:ser () in
  Platform_gen.node_type ~tech ~hpd
    ~base_wcets_ms:[| 5.0; 10.0; 20.0 |]
    { Platform_gen.name = "N"; base_cost = 3.0; speed = 1.2; levels = 5 }

let test_platform_gen_shape () =
  let nt = sample_node () in
  Alcotest.(check int) "5 levels" 5 (Platform.levels nt);
  Alcotest.(check int) "3 processes" 3 (Platform.n_processes nt)

let test_platform_gen_wcet_monotone () =
  let nt = sample_node ~hpd:1.0 () in
  for level = 2 to 5 do
    let prev = (Platform.version nt ~level:(level - 1)).Platform.wcet_ms in
    let cur = (Platform.version nt ~level).Platform.wcet_ms in
    Array.iteri
      (fun i t ->
        Alcotest.(check bool) "WCET grows with hardening" true (t >= prev.(i)))
      cur
  done

let test_platform_gen_pfail_scaling () =
  let nt = sample_node () in
  let p1 = (Platform.version nt ~level:1).Platform.pfail.(0) in
  let p2 = (Platform.version nt ~level:2).Platform.pfail.(0) in
  (* One hardening level divides the rate by ~100 (modulo the small WCET
     degradation increase). *)
  Alcotest.(check bool) "two orders of magnitude" true
    (p1 /. p2 > 80.0 && p1 /. p2 < 120.0)

let test_platform_gen_costs_linear () =
  let nt = sample_node () in
  List.iter
    (fun level ->
      check_float
        (Printf.sprintf "cost at level %d" level)
        (3.0 *. float_of_int level)
        (Platform.version nt ~level).Platform.cost)
    [ 1; 2; 3; 4; 5 ]

let test_platform_gen_speed_factor () =
  let nt = sample_node () in
  (* base 5 ms * speed 1.2 * (1 + 1%) at level 1 *)
  check_float "speed multiplies WCET" (5.0 *. 1.2 *. 1.01)
    (Platform.version nt ~level:1).Platform.wcet_ms.(0)

(* --- Workload --- *)

let test_spec_deterministic () =
  let a = Workload.generate_spec ~seed:11 ~index:2 ~n_processes:20 () in
  let b = Workload.generate_spec ~seed:11 ~index:2 ~n_processes:20 () in
  check_float "same deadline" a.Workload.deadline_ms b.Workload.deadline_ms;
  check_float "same gamma" a.Workload.gamma b.Workload.gamma;
  Alcotest.(check (array (float 1e-12))) "same WCETs" a.Workload.base_wcets_ms
    b.Workload.base_wcets_ms

let test_spec_parameter_ranges () =
  let params = Workload.default_params in
  let spec = Workload.generate_spec ~seed:13 ~index:5 ~n_processes:20 () in
  let lo_w, hi_w = params.Workload.base_wcet_range in
  Array.iter
    (fun w ->
      Alcotest.(check bool) "WCET 1-20 ms" true (w >= lo_w && w <= hi_w))
    spec.Workload.base_wcets_ms;
  let lo_g, hi_g = params.Workload.gamma_range in
  Alcotest.(check bool) "gamma range" true
    (spec.Workload.gamma >= lo_g && spec.Workload.gamma <= hi_g);
  let mean =
    Array.fold_left ( +. ) 0.0 spec.Workload.base_wcets_ms /. 20.0
  in
  Alcotest.(check bool) "mu is 1-10% of the mean WCET" true
    (spec.Workload.mu_ms >= 0.01 *. mean && spec.Workload.mu_ms <= 0.10 *. mean)

let test_deadline_cell_independent () =
  (* The paper requires deadlines independent of SER and HPD: the same
     spec expands to problems with identical deadlines in every cell. *)
  let spec = Workload.generate_spec ~seed:17 ~index:1 ~n_processes:20 () in
  let deadline cell =
    (Workload.problem_of_spec cell spec).Problem.app
      .Ftes_model.Application.deadline_ms
  in
  let cells =
    [ { Workload.ser = 1e-12; hpd = 0.05 };
      { Workload.ser = 1e-10; hpd = 0.05 };
      { Workload.ser = 1e-11; hpd = 1.0 } ]
  in
  let d0 = deadline (List.hd cells) in
  List.iter (fun cell -> check_float "same deadline" d0 (deadline cell)) cells

let test_problem_of_spec_valid () =
  let spec = Workload.generate_spec ~seed:19 ~index:0 ~n_processes:20 () in
  let problem =
    Workload.problem_of_spec { Workload.ser = 1e-10; hpd = 1.0 } spec
  in
  Alcotest.(check int) "library size" 4 (Problem.n_library problem);
  Alcotest.(check int) "processes" 20 (Problem.n_processes problem);
  (* All probabilities are sane even in the worst cell. *)
  for j = 0 to Problem.n_library problem - 1 do
    for level = 1 to Problem.levels problem j do
      for proc = 0 to 19 do
        let p = Problem.pfail problem ~node:j ~level ~proc in
        Alcotest.(check bool) "pfail in [0,1)" true (p >= 0.0 && p < 1.0)
      done
    done
  done

let test_paper_suite_shape () =
  let specs = Workload.paper_suite ~count:10 ~seed:23 () in
  Alcotest.(check int) "count" 10 (List.length specs);
  let sizes = List.map (fun s -> s.Workload.n_processes) specs in
  Alcotest.(check (list int)) "half 20, half 40"
    [ 20; 20; 20; 20; 20; 40; 40; 40; 40; 40 ] sizes

let test_ser_scales_pfail () =
  let spec = Workload.generate_spec ~seed:29 ~index:0 ~n_processes:20 () in
  let p_of ser =
    let problem = Workload.problem_of_spec { Workload.ser; hpd = 0.05 } spec in
    Problem.pfail problem ~node:0 ~level:1 ~proc:0
  in
  let ratio = p_of 1e-10 /. p_of 1e-11 in
  Alcotest.(check bool) "10x SER ~ 10x pfail" true (ratio > 9.9 && ratio < 10.1)

let test_hpd_scales_wcet () =
  let spec = Workload.generate_spec ~seed:31 ~index:0 ~n_processes:20 () in
  let w_of hpd level =
    let problem = Workload.problem_of_spec { Workload.ser = 1e-11; hpd } spec in
    Problem.wcet problem ~node:0 ~level ~proc:0
  in
  (* Level 1 always degrades by 1%, independent of HPD. *)
  check_float "level 1 is HPD-independent" (w_of 0.05 1) (w_of 1.0 1);
  (* At the top level the degradation equals the HPD. *)
  let base = w_of 1.0 1 /. 1.01 in
  check_float "top level at HPD=100%" (base *. 2.0) (w_of 1.0 5)

(* --- Properties --- *)

let prop_problem_tables_well_formed =
  QCheck.Test.make ~count:40 ~name:"generated problems satisfy every invariant"
    QCheck.(int_bound 5_000)
    (fun seed ->
      let spec = Workload.generate_spec ~seed ~index:0 ~n_processes:12 () in
      (* The checked constructors in problem_of_spec raise on any
         violation (monotone costs, pfail in range, consistent sizes);
         reaching this point is the property. *)
      let problem =
        Workload.problem_of_spec { Workload.ser = 1e-10; hpd = 1.0 } spec
      in
      Problem.n_processes problem = 12 && Problem.n_library problem = 4)

let prop_wcet_grows_with_level =
  QCheck.Test.make ~count:40 ~name:"WCET is non-decreasing in the hardening level"
    QCheck.(int_bound 5_000)
    (fun seed ->
      let spec = Workload.generate_spec ~seed ~index:1 ~n_processes:10 () in
      let problem =
        Workload.problem_of_spec { Workload.ser = 1e-11; hpd = 0.5 } spec
      in
      let ok = ref true in
      for j = 0 to Problem.n_library problem - 1 do
        for level = 2 to Problem.levels problem j do
          for proc = 0 to 9 do
            if
              Problem.wcet problem ~node:j ~level ~proc
              < Problem.wcet problem ~node:j ~level:(level - 1) ~proc -. 1e-12
            then ok := false
          done
        done
      done;
      !ok)

let prop_deadline_positive_and_reachable =
  QCheck.Test.make ~count:40 ~name:"deadlines exceed the no-fault anchor"
    QCheck.(int_bound 5_000)
    (fun seed ->
      let spec = Workload.generate_spec ~seed ~index:2 ~n_processes:10 () in
      spec.Workload.deadline_ms > 0.0
      && Float.is_finite spec.Workload.deadline_ms)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_gen"
    [ ( "dag_gen",
        [ Alcotest.test_case "size" `Quick test_dag_size;
          Alcotest.test_case "deterministic" `Quick test_dag_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_dag_seed_sensitivity;
          Alcotest.test_case "connectivity" `Quick test_dag_connected_beyond_first_layer;
          Alcotest.test_case "transmission range" `Quick test_dag_transmission_range;
          Alcotest.test_case "validation" `Quick test_dag_validation ] );
      ( "platform_gen",
        [ Alcotest.test_case "shape" `Quick test_platform_gen_shape;
          Alcotest.test_case "WCET monotone" `Quick test_platform_gen_wcet_monotone;
          Alcotest.test_case "pfail scaling" `Quick test_platform_gen_pfail_scaling;
          Alcotest.test_case "linear costs" `Quick test_platform_gen_costs_linear;
          Alcotest.test_case "speed factor" `Quick test_platform_gen_speed_factor ] );
      ( "workload",
        [ Alcotest.test_case "deterministic" `Quick test_spec_deterministic;
          Alcotest.test_case "parameter ranges" `Quick test_spec_parameter_ranges;
          Alcotest.test_case "deadline cell-independent" `Quick
            test_deadline_cell_independent;
          Alcotest.test_case "problems valid in worst cell" `Quick
            test_problem_of_spec_valid;
          Alcotest.test_case "suite shape" `Quick test_paper_suite_shape;
          Alcotest.test_case "SER scales pfail" `Quick test_ser_scales_pfail;
          Alcotest.test_case "HPD scales WCET" `Quick test_hpd_scales_wcet ] );
      ( "properties",
        [ q prop_problem_tables_well_formed;
          q prop_wcet_grows_with_level;
          q prop_deadline_positive_and_reachable ] ) ]
