(* Shared helpers for the test-suite. *)

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

let check_contains name s affix =
  Alcotest.(check bool)
    (Printf.sprintf "%s: output contains %S" name affix)
    true (contains s affix)

(* A tiny deterministic problem factory used across suites: [n] processes
   in a random DAG over a library of [lib] nodes with [levels]
   h-versions. *)
let synthetic_problem ?(seed = 1234) ?(n = 12) ?(ser = 1e-11) ?(hpd = 0.25) ()
    =
  let spec =
    Ftes_gen.Workload.generate_spec ~seed ~index:0 ~n_processes:n ()
  in
  Ftes_gen.Workload.problem_of_spec { Ftes_gen.Workload.ser; hpd } spec

let design_on_all_nodes ?(levels = 1) ?(k = 0) problem =
  let m = Ftes_model.Problem.n_library problem in
  let members = Array.init m Fun.id in
  let mapping =
    Ftes_core.Mapping_opt.initial_mapping ~config:Ftes_core.Config.default
      problem ~members
  in
  Ftes_model.Design.make problem ~members
    ~levels:(Array.make m levels)
    ~reexecs:(Array.make m k) ~mapping
