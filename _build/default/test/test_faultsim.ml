(* Tests for the fault model, the Monte-Carlo injector and the
   discrete-event executor, including the agreement between the SFP
   analysis and simulation. *)

module Fault_model = Ftes_faultsim.Fault_model
module Injector = Ftes_faultsim.Injector
module Executor = Ftes_faultsim.Executor
module Prng = Ftes_util.Prng
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler

let check_float = Alcotest.(check (float 1e-12))
let check_close eps = Alcotest.(check (float eps))

(* --- Fault_model --- *)

let test_model_construction () =
  let m = Fault_model.make ~ser_per_cycle:1e-10 ~masking:0.5 () in
  check_float "clock default" Fault_model.default_clock_hz m.Fault_model.clock_hz;
  check_close 1e-15 "effective rate halved" (1e-10 *. 1e8 /. 1000.0 /. 2.0)
    (Fault_model.effective_rate_per_ms m)

let test_model_validation () =
  let invalid msg f =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  invalid "Fault_model.make: negative SER" (fun () ->
      Fault_model.make ~ser_per_cycle:(-1.0) ~masking:0.0 ());
  invalid "Fault_model.make: clock must be positive" (fun () ->
      Fault_model.make ~clock_hz:0.0 ~ser_per_cycle:1e-10 ~masking:0.0 ());
  invalid "Fault_model.make: masking must lie in [0, 1]" (fun () ->
      Fault_model.make ~ser_per_cycle:1e-10 ~masking:1.5 ());
  invalid "Fault_model.of_hardening: level out of range" (fun () ->
      Fault_model.of_hardening ~ser_per_cycle:1e-10 ~level:0 ());
  invalid "Fault_model.of_hardening: reduction factor must be >= 1" (fun () ->
      Fault_model.of_hardening ~reduction_factor:0.5 ~ser_per_cycle:1e-10
        ~level:2 ())

let test_of_hardening_masking () =
  let m1 = Fault_model.of_hardening ~ser_per_cycle:1e-10 ~level:1 () in
  check_float "level 1 unmasked" 0.0 m1.Fault_model.masking;
  let m3 = Fault_model.of_hardening ~ser_per_cycle:1e-10 ~level:3 () in
  check_close 1e-12 "level 3 masks 99.99%" (1.0 -. 1e-4) m3.Fault_model.masking

let test_failure_probability_linear_regime () =
  let m = Fault_model.make ~clock_hz:1e9 ~ser_per_cycle:1e-11 ~masking:0.0 () in
  (* rate = 1e-11 * 1e6 per ms = 1e-5/ms; for 10 ms, p ~ 1e-4 (minus the
     second-order Poisson term ~ 5e-9). *)
  check_close 1e-8 "p ~ rate * t" 1e-4
    (Fault_model.failure_probability m ~duration_ms:10.0)

let test_failure_probability_saturates () =
  let m = Fault_model.make ~clock_hz:1e9 ~ser_per_cycle:1e-2 ~masking:0.0 () in
  let p = Fault_model.failure_probability m ~duration_ms:100.0 in
  Alcotest.(check bool) "saturates below 1" true (p > 0.999999 && p <= 1.0)

let test_failure_probability_zero_duration () =
  let m = Fault_model.make ~ser_per_cycle:1e-10 ~masking:0.0 () in
  check_float "zero exposure" 0.0 (Fault_model.failure_probability m ~duration_ms:0.0)

(* --- Injector --- *)

let test_injector_estimate_matches_closed_form () =
  (* Rate boosted into the observable regime. *)
  let m = Fault_model.make ~clock_hz:1e9 ~ser_per_cycle:2e-9 ~masking:0.3 () in
  let p_exact = Fault_model.failure_probability m ~duration_ms:20.0 in
  let prng = Prng.create 99 in
  let e = Injector.estimate_pfail prng m ~duration_ms:20.0 ~trials:30_000 in
  Alcotest.(check bool)
    (Printf.sprintf "closed form %.4f within CI [%.4f, %.4f]" p_exact
       e.Injector.ci_low e.Injector.ci_high)
    true
    (p_exact >= e.Injector.ci_low && p_exact <= e.Injector.ci_high)

let test_injector_zero_rate () =
  let m = Fault_model.make ~ser_per_cycle:0.0 ~masking:0.0 () in
  let prng = Prng.create 1 in
  let e = Injector.estimate_pfail prng m ~duration_ms:50.0 ~trials:100 in
  Alcotest.(check int) "never fails" 0 e.Injector.failures

let test_injector_full_masking () =
  let m = Fault_model.make ~clock_hz:1e9 ~ser_per_cycle:1e-3 ~masking:1.0 () in
  let prng = Prng.create 2 in
  let e = Injector.estimate_pfail prng m ~duration_ms:5.0 ~trials:500 in
  Alcotest.(check int) "all strikes masked" 0 e.Injector.failures

let test_injector_validation () =
  let m = Fault_model.make ~ser_per_cycle:1e-10 ~masking:0.0 () in
  Alcotest.check_raises "trials must be positive"
    (Invalid_argument "Injector.estimate_pfail: trials must be > 0") (fun () ->
      ignore (Injector.estimate_pfail (Prng.create 1) m ~duration_ms:1.0 ~trials:0))

let test_importance_boost () =
  let m = Fault_model.make ~clock_hz:1e9 ~ser_per_cycle:1e-12 ~masking:0.0 () in
  let boosted, factor = Injector.importance_boost m ~target_p:1e-2 in
  Alcotest.(check bool) "factor > 1 for rare events" true (factor > 1.0);
  check_close 1e-9 "boosted rate hits the target for 1 ms" 1e-2
    (Fault_model.effective_rate_per_ms boosted)

(* --- Executor --- *)

let fig4a_setup () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let schedule = Scheduler.schedule problem design in
  (problem, design, schedule)

let test_executor_no_faults_nominal () =
  (* With boost 1 the fig1 probabilities (~1e-5) essentially never fire
     in one run with a fixed seed; the makespan equals the nominal
     completion. *)
  let problem, design, schedule = fig4a_setup () in
  let prng = Prng.create 3 in
  let o = Executor.run_iteration prng problem design schedule in
  Alcotest.(check bool) "no failure" true (o.Executor.failed_node = None);
  Alcotest.(check int) "no faults injected" 0 o.Executor.faults_injected;
  let nominal =
    Array.fold_left Float.max 0.0 schedule.Ftes_sched.Schedule.node_finish
  in
  check_close 1e-9 "nominal makespan" nominal o.Executor.makespan

let test_executor_budget_exceeded () =
  (* Drive probabilities to ~1 with boost; with k = 0 the first fault
     kills the iteration. *)
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design =
    Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |]
  in
  let schedule = Scheduler.schedule problem design in
  let prng = Prng.create 4 in
  let o = Executor.run_iteration ~boost:70_000.0 prng problem design schedule in
  Alcotest.(check bool) "a node exceeded its budget" true
    (o.Executor.failed_node <> None)

let test_executor_reexecution_extends_makespan () =
  let problem, design, schedule = fig4a_setup () in
  (* Find a seed that injects at least one recovered fault. *)
  let rec find seed =
    if seed > 500 then Alcotest.fail "no seed with a recovered fault"
    else begin
      let prng = Prng.create seed in
      let o = Executor.run_iteration ~boost:20_000.0 prng problem design schedule in
      if o.Executor.failed_node = None && o.Executor.faults_injected > 0 then o
      else find (seed + 1)
    end
  in
  let o = find 0 in
  let nominal =
    Array.fold_left Float.max 0.0 schedule.Ftes_sched.Schedule.node_finish
  in
  Alcotest.(check bool) "recovered run is longer than nominal" true
    (o.Executor.makespan > nominal);
  Alcotest.(check bool) "and within the conservative bound" true
    (o.Executor.makespan
     <= Scheduler.schedule_length ~slack:Scheduler.Conservative problem design
        +. 1e-9)

let test_executor_deterministic () =
  let problem, design, schedule = fig4a_setup () in
  let run seed =
    Executor.run_iteration ~boost:10_000.0 (Prng.create seed) problem design
      schedule
  in
  let a = run 42 and b = run 42 in
  Alcotest.(check bool) "same seed, same outcome" true (a = b)

let test_executor_boost_validation () =
  let problem, design, schedule = fig4a_setup () in
  Alcotest.check_raises "boost below 1"
    (Invalid_argument "Executor: boost must be >= 1") (fun () ->
      ignore
        (Executor.run_iteration ~boost:0.5 (Prng.create 1) problem design
           schedule))

let test_campaign_matches_sfp () =
  let problem, design, _ = fig4a_setup () in
  let prng = Prng.create 5 in
  let c = Executor.run_campaign ~boost:20_000.0 prng problem design ~trials:30_000 in
  (* With boost 2e4, p ~ 0.24/0.26 per process; k=1 per node -> failure
     rate around 0.26; MC must agree with formula (5) within a few
     percent. *)
  Alcotest.(check bool)
    (Printf.sprintf "observed %.4f vs predicted %.4f"
       c.Executor.observed_failure_rate c.Executor.predicted_failure_rate)
    true
    (Float.abs (c.Executor.observed_failure_rate -. c.Executor.predicted_failure_rate)
     <= 0.02)

let test_campaign_conservative_bound () =
  (* Every within-budget scenario completes within the conservative
     worst-case schedule length (the sound bound). *)
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let prng = Prng.create 6 in
  let c =
    Executor.run_campaign ~boost:50_000.0 ~slack:Scheduler.Conservative prng
      problem design ~trials:5_000
  in
  let bound =
    Scheduler.schedule_length ~slack:Scheduler.Conservative problem design
  in
  Alcotest.(check bool)
    (Printf.sprintf "max makespan %.1f within bound %.1f" c.Executor.max_makespan
       bound)
    true
    (c.Executor.max_makespan <= bound +. 1e-9)

let test_campaign_validation () =
  let problem, design, _ = fig4a_setup () in
  Alcotest.check_raises "trials positive"
    (Invalid_argument "Executor.run_campaign: trials must be > 0") (fun () ->
      ignore (Executor.run_campaign (Prng.create 1) problem design ~trials:0))

(* --- Deterministic scenarios and the exact worst case --- *)

module Scenarios = Ftes_faultsim.Scenarios

let test_scenario_nominal () =
  let problem, design, schedule = fig4a_setup () in
  let o =
    Executor.run_scenario problem design schedule ~faults:(Array.make 4 0)
  in
  let nominal =
    Array.fold_left Float.max 0.0 schedule.Ftes_sched.Schedule.node_finish
  in
  check_close 1e-9 "no faults = nominal" nominal o.Executor.makespan;
  Alcotest.(check int) "no faults injected" 0 o.Executor.faults_injected

let test_scenario_known_cascade () =
  (* P2 fails once on N1, P4 fails once on N2: the Fig. 4a cascade
     computed by hand ends at 445 ms. *)
  let problem, design, schedule = fig4a_setup () in
  let o =
    Executor.run_scenario problem design schedule ~faults:[| 0; 1; 0; 1 |]
  in
  Alcotest.(check bool) "within budget" true (o.Executor.failed_node = None);
  check_close 1e-9 "cascade makespan" 445.0 o.Executor.makespan

let test_scenario_budget_exceeded () =
  let problem, design, schedule = fig4a_setup () in
  (* Two faults on P2 exceed N1's budget of one. *)
  let o =
    Executor.run_scenario problem design schedule ~faults:[| 0; 2; 0; 0 |]
  in
  Alcotest.(check bool) "node failure" true (o.Executor.failed_node = Some 0)

let test_scenario_validation () =
  let problem, design, schedule = fig4a_setup () in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Executor.run_scenario: fault vector length mismatch")
    (fun () ->
      ignore (Executor.run_scenario problem design schedule ~faults:[| 0 |]));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Executor.run_scenario: negative fault count") (fun () ->
      ignore
        (Executor.run_scenario problem design schedule
           ~faults:[| 0; -1; 0; 0 |]))

let test_scenarios_count () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  (* Per node: f=0 (1 way) + f=1 over two processes (2 ways) = 3. *)
  Alcotest.(check (float 1e-9)) "3 x 3 scenarios" 9.0
    (Scenarios.count_scenarios design)

let test_worst_case_fig4a () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let r = Scenarios.worst_case problem design in
  Alcotest.(check int) "all scenarios replayed" 9 r.Scenarios.scenarios;
  check_close 1e-9 "exact worst case" 445.0 r.Scenarios.exact_worst_ms;
  check_close 1e-9 "the paper's bound" 340.0 r.Scenarios.shared_bound_ms;
  Alcotest.(check bool) "certifies the shared bound's optimism" true
    (Scenarios.optimism_certificate r);
  Alcotest.(check bool) "within the sound bound" true
    (r.Scenarios.exact_worst_ms <= r.Scenarios.conservative_bound_ms +. 1e-9)

let test_worst_case_no_reexecution () =
  (* With k = 0 there is a single scenario and every bound is tight. *)
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4e problem in
  let r = Scenarios.worst_case problem design in
  Alcotest.(check int) "one scenario" 1 r.Scenarios.scenarios;
  check_close 1e-9 "exact = shared = 330" 330.0 r.Scenarios.exact_worst_ms;
  Alcotest.(check bool) "no optimism" false (Scenarios.optimism_certificate r)

let test_scenario_nominal_tdma () =
  (* A fault-free replay over a TDMA bus lands exactly on the TDMA
     schedule's nominal completion. *)
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let tdma = Ftes_sched.Bus.Tdma { slot_ms = 10.0 } in
  let schedule = Scheduler.schedule ~bus:tdma problem design in
  let o =
    Executor.run_scenario ~bus:tdma problem design schedule
      ~faults:(Array.make 4 0)
  in
  let nominal =
    Array.fold_left Float.max 0.0 schedule.Ftes_sched.Schedule.node_finish
  in
  check_close 1e-9 "TDMA nominal replay" nominal o.Executor.makespan

let test_worst_case_limit () =
  let problem = Helpers.synthetic_problem ~n:20 () in
  let design = Helpers.design_on_all_nodes ~k:5 problem in
  Alcotest.(check bool) "guard trips" true
    (try
       ignore (Scenarios.worst_case ~limit:100 problem design);
       false
     with Invalid_argument _ -> true)

let prop_exact_within_conservative =
  QCheck.Test.make ~count:25
    ~name:"exact worst case never exceeds the conservative bound"
    QCheck.(int_bound 5_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:6 () in
      let prng = Prng.create seed in
      let m = 1 + Prng.int prng 2 in
      let members = Array.init m Fun.id in
      let mapping =
        Array.init (Ftes_model.Problem.n_processes problem) (fun _ ->
            Prng.int prng m)
      in
      let design =
        Design.make problem ~members ~levels:(Array.make m 1)
          ~reexecs:(Array.init m (fun _ -> Prng.int prng 3))
          ~mapping
      in
      let r = Scenarios.worst_case ~limit:500_000 problem design in
      r.Scenarios.exact_worst_ms <= r.Scenarios.conservative_bound_ms +. 1e-9)

(* Envelope property: however faults fall, a surviving run never exceeds
   nominal + all slack + all bus traffic. *)
let prop_makespan_envelope =
  QCheck.Test.make ~count:60 ~name:"surviving makespan within global envelope"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let problem = Ftes_cc.Fig_examples.fig1_problem () in
      let design = Ftes_cc.Fig_examples.fig4a problem in
      let schedule = Scheduler.schedule problem design in
      let o =
        Executor.run_iteration ~boost:30_000.0 (Prng.create seed) problem design
          schedule
      in
      match o.Executor.failed_node with
      | Some _ -> true
      | None ->
          let mu =
            problem.Ftes_model.Problem.app
              .Ftes_model.Application.recovery_overhead_ms
          in
          let nominal =
            Array.fold_left Float.max 0.0 schedule.Ftes_sched.Schedule.node_finish
          in
          let slack_budget =
            Array.to_list design.Design.reexecs
            |> List.mapi (fun slot k ->
                   let max_t =
                     Array.fold_left
                       (fun acc e ->
                         if e.Ftes_sched.Schedule.slot = slot then
                           Float.max acc
                             (e.Ftes_sched.Schedule.finish
                             -. e.Ftes_sched.Schedule.start)
                         else acc)
                       0.0 schedule.Ftes_sched.Schedule.entries
                   in
                   float_of_int k *. (max_t +. mu))
            |> List.fold_left ( +. ) 0.0
          in
          let bus =
            List.fold_left
              (fun acc m ->
                acc
                +. m.Ftes_sched.Schedule.edge.Ftes_model.Task_graph.transmission_ms)
              0.0 schedule.Ftes_sched.Schedule.messages
          in
          o.Executor.makespan <= nominal +. slack_budget +. bus +. 1e-9)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_faultsim"
    [ ( "fault_model",
        [ Alcotest.test_case "construction" `Quick test_model_construction;
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "hardening masking" `Quick test_of_hardening_masking;
          Alcotest.test_case "linear regime" `Quick
            test_failure_probability_linear_regime;
          Alcotest.test_case "saturation" `Quick test_failure_probability_saturates;
          Alcotest.test_case "zero duration" `Quick
            test_failure_probability_zero_duration ] );
      ( "injector",
        [ Alcotest.test_case "estimate within CI" `Quick
            test_injector_estimate_matches_closed_form;
          Alcotest.test_case "zero rate" `Quick test_injector_zero_rate;
          Alcotest.test_case "full masking" `Quick test_injector_full_masking;
          Alcotest.test_case "validation" `Quick test_injector_validation;
          Alcotest.test_case "importance boost" `Quick test_importance_boost ] );
      ( "executor",
        [ Alcotest.test_case "fault-free nominal run" `Quick
            test_executor_no_faults_nominal;
          Alcotest.test_case "budget exceeded" `Quick test_executor_budget_exceeded;
          Alcotest.test_case "re-execution extends makespan" `Quick
            test_executor_reexecution_extends_makespan;
          Alcotest.test_case "deterministic" `Quick test_executor_deterministic;
          Alcotest.test_case "boost validation" `Quick test_executor_boost_validation ] );
      ( "scenarios",
        [ Alcotest.test_case "nominal replay" `Quick test_scenario_nominal;
          Alcotest.test_case "known cascade = 445 ms" `Quick
            test_scenario_known_cascade;
          Alcotest.test_case "budget exceeded" `Quick test_scenario_budget_exceeded;
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "scenario count" `Quick test_scenarios_count;
          Alcotest.test_case "fig4a exact worst case" `Quick test_worst_case_fig4a;
          Alcotest.test_case "k=0 tight" `Quick test_worst_case_no_reexecution;
          Alcotest.test_case "TDMA nominal replay" `Quick
            test_scenario_nominal_tdma;
          Alcotest.test_case "limit guard" `Quick test_worst_case_limit;
          q prop_exact_within_conservative ] );
      ( "campaign",
        [ Alcotest.test_case "matches SFP" `Slow test_campaign_matches_sfp;
          Alcotest.test_case "conservative bound holds" `Quick
            test_campaign_conservative_bound;
          Alcotest.test_case "validation" `Quick test_campaign_validation;
          q prop_makespan_envelope ] ) ]
