test/test_sched.ml: Alcotest Array Float Ftes_cc Ftes_model Ftes_sched Ftes_util Fun Helpers List Printf QCheck QCheck_alcotest
