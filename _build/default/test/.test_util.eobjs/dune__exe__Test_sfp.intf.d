test/test_sfp.mli:
