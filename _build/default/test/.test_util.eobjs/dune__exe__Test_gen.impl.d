test/test_gen.ml: Alcotest Array Float Ftes_gen Ftes_model Ftes_util List Printf QCheck QCheck_alcotest
