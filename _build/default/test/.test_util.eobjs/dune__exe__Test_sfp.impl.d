test/test_sfp.ml: Alcotest Array Float Ftes_cc Ftes_core Ftes_model Ftes_sfp Gen Helpers List Printf QCheck QCheck_alcotest
