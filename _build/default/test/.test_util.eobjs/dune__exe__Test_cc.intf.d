test/test_cc.mli:
