test/test_model.ml: Alcotest Array Filename Float Format Ftes_cc Ftes_gen Ftes_model Ftes_util Fun Helpers List Option QCheck QCheck_alcotest Result String Sys
