test/test_faultsim.mli:
