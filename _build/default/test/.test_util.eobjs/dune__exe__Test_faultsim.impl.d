test/test_faultsim.ml: Alcotest Array Float Ftes_cc Ftes_faultsim Ftes_model Ftes_sched Ftes_util Fun Helpers List Printf QCheck QCheck_alcotest
