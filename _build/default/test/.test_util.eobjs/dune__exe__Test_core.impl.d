test/test_core.ml: Alcotest Array Float Ftes_cc Ftes_core Ftes_gen Ftes_model Ftes_sched Ftes_sfp Helpers List Option Printf
