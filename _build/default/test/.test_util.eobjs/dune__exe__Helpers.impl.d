test/helpers.ml: Alcotest Array Ftes_core Ftes_gen Ftes_model Fun Printf String
