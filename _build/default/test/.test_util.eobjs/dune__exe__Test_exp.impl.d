test/test_exp.ml: Alcotest Array Ftes_core Ftes_exp Ftes_gen Helpers Lazy List
