test/test_cc.ml: Alcotest Array Ftes_cc Ftes_core Ftes_model Ftes_sched Ftes_sfp List Printf
