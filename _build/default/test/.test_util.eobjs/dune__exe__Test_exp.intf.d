test/test_exp.mli:
