test/test_util.ml: Alcotest Array Filename Float Ftes_util Fun Gen Helpers List Printf QCheck QCheck_alcotest Result String Sys
