(* Tests for the experiment harness: cells, suites, figure artifacts and
   ablations (small populations so the whole suite stays fast). *)

module Synthetic = Ftes_exp.Synthetic
module Figures = Ftes_exp.Figures
module Ablations = Ftes_exp.Ablations
module Config = Ftes_core.Config
module Workload = Ftes_gen.Workload

let specs = lazy (Workload.paper_suite ~count:6 ~seed:321 ())

let key policy = { Synthetic.ser = 1e-11; hpd = 0.05; policy }

let test_run_cell_shape () =
  let run = Synthetic.run_cell ~specs:(Lazy.force specs) (key Config.Optimize) in
  Alcotest.(check int) "one cost slot per app" 6 (Array.length run.Synthetic.costs);
  Alcotest.(check bool) "elapsed time recorded" true (run.Synthetic.elapsed_s >= 0.0)

let test_acceptance_monotone_in_budget () =
  let run = Synthetic.run_cell ~specs:(Lazy.force specs) (key Config.Optimize) in
  let a15 = Synthetic.acceptance run ~max_cost:15.0 in
  let a20 = Synthetic.acceptance run ~max_cost:20.0 in
  let a25 = Synthetic.acceptance run ~max_cost:25.0 in
  Alcotest.(check bool) "monotone" true (a15 <= a20 && a20 <= a25);
  Alcotest.(check bool) "bounded" true (a15 >= 0.0 && a25 <= 100.0)

let test_acceptance_vs_feasibility () =
  let run = Synthetic.run_cell ~specs:(Lazy.force specs) (key Config.Optimize) in
  Alcotest.(check bool) "acceptance below feasibility" true
    (Synthetic.acceptance run ~max_cost:1e9 <= Synthetic.feasibility run +. 1e-9);
  Alcotest.(check (float 1e-9)) "infinite budget = feasibility"
    (Synthetic.feasibility run)
    (Synthetic.acceptance run ~max_cost:infinity)

let test_opt_at_least_min () =
  let specs = Lazy.force specs in
  let opt = Synthetic.run_cell ~specs (key Config.Optimize) in
  let min_ = Synthetic.run_cell ~specs (key Config.Fixed_min) in
  Alcotest.(check bool) "OPT feasibility >= MIN feasibility" true
    (Synthetic.feasibility opt >= Synthetic.feasibility min_ -. 1e-9)

let test_suite_memoization () =
  let suite = Synthetic.create_suite ~count:4 ~seed:55 () in
  let a = Synthetic.cell suite (key Config.Fixed_min) in
  let b = Synthetic.cell suite (key Config.Fixed_min) in
  Alcotest.(check bool) "same physical run returned" true (a == b)

let test_suite_population () =
  let suite = Synthetic.create_suite ~count:8 ~seed:55 () in
  Alcotest.(check int) "population size" 8
    (List.length (Synthetic.suite_specs suite))

let test_policies_order () =
  Alcotest.(check (list string)) "paper chart order" [ "MAX"; "MIN"; "OPT" ]
    (List.map Config.policy_name Synthetic.policies)

(* --- Figures --- *)

let small_suite = lazy (Synthetic.create_suite ~count:4 ~seed:77 ())

let check_artifact artifact ~xs =
  Alcotest.(check int) "x labels" xs (List.length artifact.Figures.x_labels);
  Alcotest.(check int) "three measured series" 3 (List.length artifact.Figures.ours);
  Alcotest.(check int) "three paper series" 3 (List.length artifact.Figures.paper);
  List.iter
    (fun (_, values) ->
      Alcotest.(check int) "series width" xs (List.length values);
      List.iter
        (fun v ->
          Alcotest.(check bool) "percentage" true (v >= 0.0 && v <= 100.0))
        values)
    artifact.Figures.ours

let test_fig6a_artifact () =
  check_artifact (Figures.fig6a (Lazy.force small_suite)) ~xs:4

let test_fig6b_artifacts () =
  let artifacts = Figures.fig6b (Lazy.force small_suite) in
  Alcotest.(check int) "three ArC rows" 3 (List.length artifacts);
  List.iter (check_artifact ~xs:4) artifacts

let test_fig6c_artifact () =
  check_artifact (Figures.fig6c (Lazy.force small_suite)) ~xs:3

let test_fig6d_artifact () =
  check_artifact (Figures.fig6d (Lazy.force small_suite)) ~xs:3

let test_render_artifact () =
  let s = Figures.render (Figures.fig6a (Lazy.force small_suite)) in
  Helpers.check_contains "render" s "MIN";
  Helpers.check_contains "render" s "OPT";
  Helpers.check_contains "render" s "Fig. 6a";
  Helpers.check_contains "render" s "(paper)"

let test_to_csv () =
  let rows = Figures.to_csv (Figures.fig6a (Lazy.force small_suite)) in
  Alcotest.(check int) "header + 3 measured + 3 paper" 7 (List.length rows);
  List.iter
    (fun row -> Alcotest.(check int) "row width" 6 (List.length row))
    rows

let test_cc_study_rows () =
  let r = Figures.cc_study () in
  Alcotest.(check int) "three strategies" 3 (List.length r.Figures.rows);
  (match r.Figures.opt_saving_vs_max with
  | None -> Alcotest.fail "saving must be available"
  | Some s -> Alcotest.(check bool) "saving in (0.55, 0.75)" true (s > 0.55 && s < 0.75));
  let s = Figures.render_cc r in
  Helpers.check_contains "render" s "66%";
  Helpers.check_contains "render" s "Cruise controller"

(* --- Ablations --- *)

let test_slack_ablation () =
  let rows = Ablations.slack_ablation ~count:4 ~seed:88 () in
  Alcotest.(check int) "three policies" 3 (List.length rows);
  let shared = List.nth rows 0 and dedicated = List.nth rows 2 in
  Alcotest.(check bool) "sharing never hurts feasibility" true
    (shared.Ablations.feasible_pct >= dedicated.Ablations.feasible_pct -. 1e-9);
  Helpers.check_contains "render" (Ablations.render_slack rows) "slack policy"

let test_mapping_ablation () =
  let rows = Ablations.mapping_ablation ~count:4 ~seed:88 () in
  Alcotest.(check int) "two variants" 2 (List.length rows);
  Helpers.check_contains "render" (Ablations.render_mapping rows) "tabu"

let test_bound_ablation () =
  let rows = Ablations.bound_ablation ~count:4 ~seed:88 () in
  Alcotest.(check int) "three technologies" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "bound never needs fewer re-executions" true
        (r.Ablations.mean_extra_k >= -1e9 && r.Ablations.bound_mean_k
         >= r.Ablations.exact_mean_k -. 1e-9))
    rows;
  Helpers.check_contains "render" (Ablations.render_bound rows) "exact"

let test_optimality_gap () =
  let r = Ablations.optimality_gap ~count:4 ~n_processes:6 ~seed:88 () in
  Alcotest.(check int) "instances" 4 r.Ablations.instances;
  Alcotest.(check bool) "gap is non-negative" true (r.Ablations.mean_gap_pct >= -1e-6);
  Alcotest.(check bool) "optimal count bounded" true
    (r.Ablations.heuristic_optimal <= r.Ablations.both_feasible);
  Helpers.check_contains "render" (Ablations.render_gap r) "optimum"

let test_exact_worst_case_rows () =
  let rows = Ablations.exact_worst_case ~count:3 ~n_processes:6 ~seed:88 () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "exact within conservative" true
        (r.Ablations.exact_ms <= r.Ablations.conservative_ms +. 1e-9);
      Alcotest.(check bool) "exact at least the nominal shared" true
        (r.Ablations.exact_ms > 0.0))
    rows;
  Helpers.check_contains "render" (Ablations.render_exact rows) "worst case"

let test_runtime_study () =
  let rows = Ablations.runtime_study ~per_size:1 ~seed:88 () in
  Alcotest.(check (list int)) "sizes" [ 10; 20; 30; 40 ]
    (List.map (fun r -> r.Ablations.n_procs) rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "times non-negative" true
        (r.Ablations.mean_opt_s >= 0.0 && r.Ablations.max_opt_s >= r.Ablations.mean_opt_s -. 1e-9))
    rows;
  Helpers.check_contains "render" (Ablations.render_runtime rows) "Runtime"

let test_policy_comparison () =
  let rows = Ablations.retry_policy_comparison ~count:4 ~seed:88 () in
  Alcotest.(check int) "three policies" 3 (List.length rows);
  (match rows with
  | shared :: others ->
      Alcotest.(check (float 1e-9)) "shared is the reference" 1.0
        shared.Ablations.mean_sl_ratio;
      List.iter
        (fun r ->
          Alcotest.(check bool) "alternatives never shorter" true
            (r.Ablations.mean_sl_ratio >= 1.0 -. 1e-9))
        others
  | [] -> Alcotest.fail "no rows");
  Helpers.check_contains "render" (Ablations.render_policy rows) "policy"

let test_checkpoint_ablation () =
  let rows = Ablations.checkpoint_ablation ~count:4 ~seed:88 () in
  Alcotest.(check int) "three save costs" 3 (List.length rows);
  (match rows with
  | cheap :: _ :: expensive :: _ ->
      Alcotest.(check bool) "cheaper saves reclaim at least as much" true
        (cheap.Ablations.mean_sl_reduction_pct
         >= expensive.Ablations.mean_sl_reduction_pct -. 1e-6);
      List.iter
        (fun r ->
          Alcotest.(check bool) "checkpointing never hurts" true
            (r.Ablations.mean_sl_reduction_pct >= -1e-6))
        rows
  | _ -> Alcotest.fail "row shape");
  Helpers.check_contains "render" (Ablations.render_checkpoint rows) "checkpoint"

let test_optimism_rows () =
  let rows = Ablations.optimism ~count:2 ~trials:2_000 ~boost:1_000.0 ~seed:99 () in
  Alcotest.(check bool) "at least one feasible app" true (List.length rows >= 1);
  List.iter
    (fun r ->
      Alcotest.(check bool) "rates are probabilities" true
        (r.Ablations.predicted >= 0.0 && r.Ablations.predicted <= 1.0
        && r.Ablations.observed >= 0.0 && r.Ablations.observed <= 1.0))
    rows;
  Helpers.check_contains "render" (Ablations.render_optimism rows) "SFP"

let () =
  Alcotest.run "ftes_exp"
    [ ( "synthetic",
        [ Alcotest.test_case "cell shape" `Quick test_run_cell_shape;
          Alcotest.test_case "acceptance monotone" `Quick
            test_acceptance_monotone_in_budget;
          Alcotest.test_case "acceptance vs feasibility" `Quick
            test_acceptance_vs_feasibility;
          Alcotest.test_case "OPT >= MIN" `Quick test_opt_at_least_min;
          Alcotest.test_case "suite memoization" `Quick test_suite_memoization;
          Alcotest.test_case "suite population" `Quick test_suite_population;
          Alcotest.test_case "policy order" `Quick test_policies_order ] );
      ( "figures",
        [ Alcotest.test_case "fig6a" `Quick test_fig6a_artifact;
          Alcotest.test_case "fig6b" `Quick test_fig6b_artifacts;
          Alcotest.test_case "fig6c" `Quick test_fig6c_artifact;
          Alcotest.test_case "fig6d" `Quick test_fig6d_artifact;
          Alcotest.test_case "render" `Quick test_render_artifact;
          Alcotest.test_case "csv" `Quick test_to_csv;
          Alcotest.test_case "cc study" `Slow test_cc_study_rows ] );
      ( "ablations",
        [ Alcotest.test_case "slack" `Slow test_slack_ablation;
          Alcotest.test_case "mapping" `Slow test_mapping_ablation;
          Alcotest.test_case "SFP bound" `Slow test_bound_ablation;
          Alcotest.test_case "optimality gap" `Slow test_optimality_gap;
          Alcotest.test_case "exact worst case" `Slow test_exact_worst_case_rows;
          Alcotest.test_case "runtime study" `Slow test_runtime_study;
          Alcotest.test_case "retry policy comparison" `Slow test_policy_comparison;
          Alcotest.test_case "checkpoint ablation" `Slow test_checkpoint_ablation;
          Alcotest.test_case "optimism" `Slow test_optimism_rows ] ) ]
