(* Tests for the recovery-slack scheduler, pinned against every
   schedulability verdict of the paper's Fig. 3 and Fig. 4. *)

module Scheduler = Ftes_sched.Scheduler
module Schedule = Ftes_sched.Schedule
module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Task_graph = Ftes_model.Task_graph

let check_float = Alcotest.(check (float 1e-9))

let fig1 = Ftes_cc.Fig_examples.fig1_problem

let fig3_design level k =
  let problem = Ftes_cc.Fig_examples.fig3_problem () in
  let design =
    Design.make problem ~members:[| 0 |] ~levels:[| level |] ~reexecs:[| k |]
      ~mapping:[| 0 |]
  in
  (problem, design)

(* --- Fig. 3: single process, worst cases 680 / 340 / 340 --- *)

let test_fig3_lengths () =
  let check level k expected =
    let problem, design = fig3_design level k in
    check_float
      (Printf.sprintf "h=%d k=%d" level k)
      expected
      (Scheduler.schedule_length problem design)
  in
  check 1 6 680.0;
  check 2 2 340.0;
  check 3 1 340.0

let test_fig3_schedulability () =
  let problem, design = fig3_design 1 6 in
  Alcotest.(check bool) "h1 k6 misses 360" false
    (Scheduler.is_schedulable problem design);
  let problem, design = fig3_design 2 2 in
  Alcotest.(check bool) "h2 k2 fits" true (Scheduler.is_schedulable problem design)

(* --- Fig. 4: the five alternatives --- *)

let fig4_cases problem =
  [ ("4a", Ftes_cc.Fig_examples.fig4a problem, 340.0, true);
    ("4b", Ftes_cc.Fig_examples.fig4b problem, 540.0, false);
    ("4c", Ftes_cc.Fig_examples.fig4c problem, 450.0, false);
    ("4d", Ftes_cc.Fig_examples.fig4d problem, 390.0, false);
    ("4e", Ftes_cc.Fig_examples.fig4e problem, 330.0, true) ]

let test_fig4_lengths () =
  let problem = fig1 () in
  List.iter
    (fun (name, design, expected, _) ->
      check_float name expected (Scheduler.schedule_length problem design))
    (fig4_cases problem)

let test_fig4_verdicts () =
  let problem = fig1 () in
  List.iter
    (fun (name, design, _, schedulable) ->
      Alcotest.(check bool) name schedulable
        (Scheduler.is_schedulable problem design))
    (fig4_cases problem)

(* --- Structure of produced schedules --- *)

let test_schedule_entries () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let s = Scheduler.schedule problem design in
  Alcotest.(check int) "one entry per process" 4 (Array.length s.Schedule.entries);
  let e0 = Schedule.entry s ~proc:0 in
  check_float "P1 starts at 0" 0.0 e0.Schedule.start;
  check_float "P1 runs its WCET" 75.0 e0.Schedule.finish;
  Alcotest.(check int) "P1 on N1" 0 e0.Schedule.slot

let test_messages_only_cross_node () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let s = Scheduler.schedule problem design in
  (* Mapping {P1,P2} vs {P3,P4}: crossing edges are P1->P3 and P2->P4. *)
  let crossing =
    List.map
      (fun m -> (m.Schedule.edge.Task_graph.src, m.Schedule.edge.Task_graph.dst))
      s.Schedule.messages
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "bus messages" [ (0, 2); (1, 3) ] crossing

let test_mono_has_no_messages () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4e problem in
  let s = Scheduler.schedule problem design in
  Alcotest.(check int) "no bus traffic on one node" 0
    (List.length s.Schedule.messages)

let test_validate_fig4 () =
  let problem = fig1 () in
  List.iter
    (fun (name, design, _, _) ->
      let s = Scheduler.schedule problem design in
      match Schedule.validate problem design s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: invalid schedule: %s" name msg)
    (fig4_cases problem)

let test_priorities_are_bottom_levels () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4e problem in
  let prio = Scheduler.priorities problem design in
  (* Mono-node: no communication counted; exec times at N2 h3. *)
  check_float "sink P4" 90.0 prio.(3);
  check_float "P2 = t2 + t4" 180.0 prio.(1);
  check_float "P3 = t3 + t4" 165.0 prio.(2);
  check_float "source P1" (75.0 +. 180.0) prio.(0)

let test_utilization () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4e problem in
  let s = Scheduler.schedule problem design in
  check_float "mono node fully busy" 1.0 (Schedule.utilization s ~slot:0)

let test_gantt_renders () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let s = Scheduler.schedule problem design in
  let g = Schedule.to_gantt problem design s in
  Helpers.check_contains "gantt" g "N1";
  Helpers.check_contains "gantt" g "N2";
  Helpers.check_contains "gantt" g "bus";
  Helpers.check_contains "gantt" g "slack"

(* --- Slack policies --- *)

let test_slack_mode_ordering () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let shared = Scheduler.schedule_length ~slack:Scheduler.Shared problem design in
  let conservative =
    Scheduler.schedule_length ~slack:Scheduler.Conservative problem design
  in
  let dedicated =
    Scheduler.schedule_length ~slack:Scheduler.Dedicated problem design
  in
  Alcotest.(check bool) "shared <= conservative" true (shared <= conservative +. 1e-9);
  Alcotest.(check bool) "conservative <= dedicated" true
    (conservative <= dedicated +. 1e-9)

let test_zero_k_modes_agree () =
  let problem = fig1 () in
  let design =
    Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |]
  in
  let shared = Scheduler.schedule_length ~slack:Scheduler.Shared problem design in
  let conservative =
    Scheduler.schedule_length ~slack:Scheduler.Conservative problem design
  in
  let dedicated =
    Scheduler.schedule_length ~slack:Scheduler.Dedicated problem design
  in
  check_float "no slack -> same" shared conservative;
  check_float "no slack -> same (dedicated)" shared dedicated

let test_per_process_zero_budgets () =
  (* All-zero per-process budgets coincide with the fault-free shared
     schedule. *)
  let problem = fig1 () in
  let design =
    Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |]
  in
  let shared = Scheduler.schedule_length problem design in
  let pp =
    Scheduler.schedule_length
      ~slack:(Scheduler.Per_process (Array.make 4 0))
      problem design
  in
  check_float "identical without retries" shared pp

let test_dedicated_commit_contract () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4b problem in
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let s = Scheduler.schedule ~slack:Scheduler.Dedicated problem design in
  Array.iter
    (fun e ->
      let t = e.Schedule.finish -. e.Schedule.start in
      let k = design.Design.reexecs.(e.Schedule.slot) in
      check_float
        (Printf.sprintf "dedicated commit of P%d" (e.Schedule.proc + 1))
        (e.Schedule.finish +. (float_of_int k *. (t +. mu)))
        e.Schedule.commit)
    s.Schedule.entries

let test_shared_worst_end_contract () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let s = Scheduler.schedule ~slack:Scheduler.Shared problem design in
  Array.iteri
    (fun slot worst ->
      let max_t =
        Array.fold_left
          (fun acc e ->
            if e.Schedule.slot = slot then
              Float.max acc (e.Schedule.finish -. e.Schedule.start)
            else acc)
          0.0 s.Schedule.entries
      in
      let k = design.Design.reexecs.(slot) in
      check_float
        (Printf.sprintf "slack region of slot %d" slot)
        (s.Schedule.node_finish.(slot) +. (float_of_int k *. (max_t +. mu)))
        worst)
    s.Schedule.node_worst

(* --- Bus arbitration --- *)

module Bus = Ftes_sched.Bus

let test_bus_fcfs () =
  let bus = Bus.create Bus.Fcfs ~members:2 in
  let s1, f1 = Bus.transmit bus ~member:0 ~ready:5.0 ~duration:3.0 in
  check_float "first message immediate" 5.0 s1;
  check_float "first message end" 8.0 f1;
  let s2, f2 = Bus.transmit bus ~member:1 ~ready:6.0 ~duration:2.0 in
  check_float "second waits for the bus" 8.0 s2;
  check_float "second end" 10.0 f2;
  let s3, _ = Bus.transmit bus ~member:0 ~ready:20.0 ~duration:1.0 in
  check_float "idle bus serves immediately" 20.0 s3

let test_bus_tdma_own_slot () =
  (* 2 members, 10 ms slots: member 0 owns [0,10), [20,30), ...;
     member 1 owns [10,20), [30,40), ... *)
  let bus = Bus.create (Bus.Tdma { slot_ms = 10.0 }) ~members:2 in
  let s, f = Bus.transmit bus ~member:0 ~ready:2.0 ~duration:3.0 in
  check_float "starts inside own slot" 2.0 s;
  check_float "fits in the slot" 5.0 f;
  let s, f = Bus.transmit bus ~member:1 ~ready:2.0 ~duration:3.0 in
  check_float "waits for its slot" 10.0 s;
  check_float "transmits there" 13.0 f

let test_bus_tdma_spans_rounds () =
  let bus = Bus.create (Bus.Tdma { slot_ms = 10.0 }) ~members:2 in
  (* 15 ms from member 0 starting at 0: 10 ms in [0,10) + 5 ms in [20,25). *)
  let s, f = Bus.transmit bus ~member:0 ~ready:0.0 ~duration:15.0 in
  check_float "starts at slot begin" 0.0 s;
  check_float "finishes in the next round" 25.0 f

let test_bus_tdma_serializes_same_member () =
  let bus = Bus.create (Bus.Tdma { slot_ms = 10.0 }) ~members:2 in
  let _, f1 = Bus.transmit bus ~member:0 ~ready:0.0 ~duration:4.0 in
  let s2, _ = Bus.transmit bus ~member:0 ~ready:0.0 ~duration:4.0 in
  Alcotest.(check bool) "second message after the first" true (s2 >= f1)

let test_bus_tdma_missed_slot () =
  let bus = Bus.create (Bus.Tdma { slot_ms = 10.0 }) ~members:2 in
  (* Ready at 9.5 in a 10 ms slot: a 3 ms message cannot finish there and
     is not preempted mid-slot boundary; it takes the 0.5 ms tail and
     continues in the next round. *)
  let s, f = Bus.transmit bus ~member:0 ~ready:9.5 ~duration:3.0 in
  check_float "uses the slot tail" 9.5 s;
  check_float "spills into the next own slot" 22.5 f

let test_bus_validation () =
  Alcotest.check_raises "bad slot"
    (Invalid_argument "Bus.create: TDMA slot must be positive") (fun () ->
      ignore (Bus.create (Bus.Tdma { slot_ms = 0.0 }) ~members:2));
  Alcotest.check_raises "bad members"
    (Invalid_argument "Bus.create: member count must be positive") (fun () ->
      ignore (Bus.create Bus.Fcfs ~members:0));
  let bus = Bus.create Bus.Fcfs ~members:2 in
  Alcotest.check_raises "member range"
    (Invalid_argument "Bus.transmit: member out of range") (fun () ->
      ignore (Bus.transmit bus ~member:2 ~ready:0.0 ~duration:1.0))

let test_bus_round_length () =
  Alcotest.(check (option (float 1e-9))) "fcfs" None
    (Bus.round_length_ms (Bus.create Bus.Fcfs ~members:3));
  Alcotest.(check (option (float 1e-9))) "tdma" (Some 30.0)
    (Bus.round_length_ms (Bus.create (Bus.Tdma { slot_ms = 10.0 }) ~members:3))

let test_schedule_under_tdma () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let tdma = Bus.Tdma { slot_ms = 10.0 } in
  let s = Scheduler.schedule ~bus:tdma problem design in
  (match Schedule.validate problem design s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "TDMA schedule invalid: %s" msg);
  (* On fig4a both messages come from the same node, so TDMA can only
     delay them relative to FCFS. *)
  Alcotest.(check bool) "TDMA SL >= FCFS SL on fig4a" true
    (Schedule.length s >= Scheduler.schedule_length problem design -. 1e-9)

(* --- Properties over generated problems --- *)

let random_design problem seed =
  let prng = Ftes_util.Prng.create seed in
  let lib = Problem.n_library problem in
  let m = 1 + Ftes_util.Prng.int prng lib in
  let pool = Array.init lib Fun.id in
  Ftes_util.Prng.shuffle prng pool;
  let members = Array.sub pool 0 m in
  let levels =
    Array.map (fun j -> 1 + Ftes_util.Prng.int prng (Problem.levels problem j)) members
  in
  let reexecs = Array.init m (fun _ -> Ftes_util.Prng.int prng 4) in
  let mapping =
    Array.init (Problem.n_processes problem) (fun _ -> Ftes_util.Prng.int prng m)
  in
  Design.make problem ~members ~levels ~reexecs ~mapping

let prop_schedules_validate =
  QCheck.Test.make ~count:100
    ~name:"schedules of random designs pass structural validation"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:10 () in
      let design = random_design problem seed in
      List.for_all
        (fun slack ->
          let s = Scheduler.schedule ~slack problem design in
          Schedule.validate problem design s = Ok ())
        [ Scheduler.Shared; Scheduler.Conservative; Scheduler.Dedicated ])

(* Only Shared <= Conservative is a theorem (identical placement order,
   later commits).  Dedicated is incomparable with both: its per-process
   slack can hide inside idle gaps that the shared end-of-node slack
   (charged at the node's largest WCET) cannot exploit, and vice
   versa. *)
let prop_slack_ordering =
  QCheck.Test.make ~count:100 ~name:"SL(shared) <= SL(conservative)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:10 () in
      let design = random_design problem seed in
      let sl mode = Scheduler.schedule_length ~slack:mode problem design in
      sl Scheduler.Shared <= sl Scheduler.Conservative +. 1e-9)

let prop_length_at_least_critical_path =
  QCheck.Test.make ~count:100 ~name:"SL >= design-aware critical path"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:10 () in
      let design = random_design problem seed in
      let graph = Problem.graph problem in
      let cp =
        Task_graph.longest_path graph
          ~exec:(fun proc -> Design.wcet problem design ~proc)
          ~comm:(fun e ->
            if design.Design.mapping.(e.Task_graph.src)
               = design.Design.mapping.(e.Task_graph.dst)
            then 0.0
            else e.Task_graph.transmission_ms)
      in
      Scheduler.schedule_length problem design >= cp -. 1e-9)

(* Every TDMA transmission starts inside a slot owned by its sender. *)
let prop_tdma_respects_slots =
  QCheck.Test.make ~count:60 ~name:"TDMA messages start in the sender's slot"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:10 () in
      let design = random_design problem seed in
      let slot_ms = 2.0 in
      let members = Design.n_members design in
      let s =
        Scheduler.schedule ~bus:(Bus.Tdma { slot_ms }) problem design
      in
      List.for_all
        (fun (m : Schedule.message) ->
          let sender = design.Design.mapping.(m.Schedule.edge.Task_graph.src) in
          let slot_index =
            int_of_float (Float.floor ((m.Schedule.bus_start +. 1e-9) /. slot_ms))
          in
          slot_index mod members = sender)
        s.Schedule.messages)

let prop_more_reexecs_never_shorten =
  QCheck.Test.make ~count:100 ~name:"SL grows with re-executions"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:10 () in
      let design = random_design problem seed in
      let bumped =
        Design.with_reexecs design
          (Array.map (fun k -> k + 1) design.Design.reexecs)
      in
      Scheduler.schedule_length problem bumped
      >= Scheduler.schedule_length problem design -. 1e-9)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_sched"
    [ ( "fig3",
        [ Alcotest.test_case "worst-case lengths 680/340/340" `Quick test_fig3_lengths;
          Alcotest.test_case "schedulability verdicts" `Quick test_fig3_schedulability ] );
      ( "fig4",
        [ Alcotest.test_case "lengths 340/540/450/390/330" `Quick test_fig4_lengths;
          Alcotest.test_case "verdicts" `Quick test_fig4_verdicts ] );
      ( "structure",
        [ Alcotest.test_case "entries" `Quick test_schedule_entries;
          Alcotest.test_case "bus messages cross nodes only" `Quick
            test_messages_only_cross_node;
          Alcotest.test_case "mono architecture has no messages" `Quick
            test_mono_has_no_messages;
          Alcotest.test_case "validation of fig4 schedules" `Quick test_validate_fig4;
          Alcotest.test_case "priorities" `Quick test_priorities_are_bottom_levels;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "gantt" `Quick test_gantt_renders ] );
      ( "slack policies",
        [ Alcotest.test_case "ordering on fig4a" `Quick test_slack_mode_ordering;
          Alcotest.test_case "k=0 makes modes agree" `Quick test_zero_k_modes_agree;
          Alcotest.test_case "per-process zero budgets" `Quick
            test_per_process_zero_budgets;
          Alcotest.test_case "dedicated commit contract" `Quick
            test_dedicated_commit_contract;
          Alcotest.test_case "shared slack contract" `Quick
            test_shared_worst_end_contract ] );
      ( "bus",
        [ Alcotest.test_case "fcfs" `Quick test_bus_fcfs;
          Alcotest.test_case "tdma own slot" `Quick test_bus_tdma_own_slot;
          Alcotest.test_case "tdma spans rounds" `Quick test_bus_tdma_spans_rounds;
          Alcotest.test_case "tdma serializes per member" `Quick
            test_bus_tdma_serializes_same_member;
          Alcotest.test_case "tdma slot tail" `Quick test_bus_tdma_missed_slot;
          Alcotest.test_case "validation" `Quick test_bus_validation;
          Alcotest.test_case "round length" `Quick test_bus_round_length;
          Alcotest.test_case "schedule under tdma" `Quick test_schedule_under_tdma ] );
      ( "properties",
        [ q prop_schedules_validate;
          q prop_slack_ordering;
          q prop_length_at_least_critical_path;
          q prop_tdma_respects_slots;
          q prop_more_reexecs_never_shorten ] ) ]
