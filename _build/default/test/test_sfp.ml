(* Tests for the System Failure Probability analysis (Appendix A),
   including the paper's worked example A.2 and the Fig. 3 re-execution
   counts. *)

module Sfp = Ftes_sfp.Sfp
module Design = Ftes_model.Design

let check_float = Alcotest.(check (float 1e-12))
let check_close eps = Alcotest.(check (float eps))

let test_pr_zero_empty () =
  let a = Sfp.node_analysis [||] in
  check_float "no processes -> never fails" 1.0 (Sfp.pr_zero a);
  check_float "exceedance is zero" 0.0 (Sfp.pr_exceeds a ~k:0)

let test_pr_zero_known () =
  (* The Appendix A.2 value. *)
  let a = Sfp.node_analysis [| 1.2e-5; 1.3e-5 |] in
  check_float "Pr(0; N1^2)" 0.99997500015 (Sfp.pr_zero a)

let test_pr_faults_single_process () =
  let p = 0.04 in
  let a = Sfp.node_analysis [| p |] in
  (* With one process, the f-fault recovery probability is Pr(0)*p^f. *)
  let pr0 = Sfp.pr_zero a in
  check_close 1e-11 "f=1" (pr0 *. p) (Sfp.pr_faults a ~f:1);
  check_close 1e-11 "f=2" (pr0 *. p *. p) (Sfp.pr_faults a ~f:2)

let test_pr_faults_bounds () =
  let a = Sfp.node_analysis [| 0.1 |] in
  Alcotest.check_raises "negative f" (Invalid_argument "Sfp.pr_faults: f out of range")
    (fun () -> ignore (Sfp.pr_faults a ~f:(-1)));
  Alcotest.check_raises "beyond kmax" (Invalid_argument "Sfp.pr_faults: f out of range")
    (fun () -> ignore (Sfp.pr_faults a ~f:(Sfp.kmax a + 1)))

let test_node_analysis_validation () =
  Alcotest.check_raises "probability 1 rejected"
    (Invalid_argument "Sfp.node_analysis: probabilities must lie in [0, 1)")
    (fun () -> ignore (Sfp.node_analysis [| 1.0 |]));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Sfp.node_analysis: probabilities must lie in [0, 1)")
    (fun () -> ignore (Sfp.node_analysis [| -0.1 |]));
  Alcotest.check_raises "negative kmax"
    (Invalid_argument "Sfp.node_analysis: negative kmax") (fun () ->
      ignore (Sfp.node_analysis ~kmax:(-1) [| 0.1 |]))

let test_pr_exceeds_k0 () =
  (* With k = 0 the node fails as soon as any fault occurs. *)
  let a = Sfp.node_analysis [| 1.2e-5; 1.3e-5 |] in
  check_close 1e-11 "1 - Pr(0)" (1.0 -. 0.99997500015) (Sfp.pr_exceeds a ~k:0)

let test_pr_exceeds_monotone () =
  let a = Sfp.node_analysis [| 0.03; 0.02; 0.05 |] in
  let rec check k prev =
    if k <= Sfp.kmax a then begin
      let v = Sfp.pr_exceeds a ~k in
      Alcotest.(check bool)
        (Printf.sprintf "decreasing at k=%d" k)
        true (v <= prev +. 1e-15);
      check (k + 1) v
    end
  in
  check 1 (Sfp.pr_exceeds a ~k:0)

let test_pr_exceeds_matches_enumeration () =
  let probs = [| 0.01; 0.02; 0.005 |] in
  let a = Sfp.node_analysis probs in
  List.iter
    (fun k ->
      check_close 1e-12
        (Printf.sprintf "k=%d" k)
        (Sfp.pr_exceeds_enumerated probs ~k)
        (Sfp.pr_exceeds a ~k))
    [ 0; 1; 2; 3; 4 ]

let prop_dp_equals_enumeration =
  QCheck.Test.make ~count:100 ~name:"pr_exceeds DP = explicit enumeration"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 4) (float_bound_inclusive 0.2))
        (int_bound 3))
    (fun (ps, k) ->
      let probs = Array.of_list ps in
      let a = Sfp.node_analysis probs in
      let dp = Sfp.pr_exceeds a ~k in
      let brute = Sfp.pr_exceeds_enumerated probs ~k in
      Float.abs (dp -. brute) <= 1e-10)

let test_union_formula () =
  let a1 = Sfp.node_analysis [| 0.1 |] and a2 = Sfp.node_analysis [| 0.2 |] in
  let u = Sfp.system_failure_per_iteration [| a1; a2 |] ~k:[| 0; 0 |] in
  (* 1 - (1-0.1)(1-0.2) = 0.28 *)
  check_close 1e-9 "union of independent node failures" 0.28 u

let test_union_length_mismatch () =
  let a = Sfp.node_analysis [| 0.1 |] in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Sfp.system_failure_per_iteration: length mismatch")
    (fun () -> ignore (Sfp.system_failure_per_iteration [| a |] ~k:[| 0; 0 |]))

let test_reliability_edge_cases () =
  check_float "certain failure" 0.0
    (Sfp.reliability ~per_iteration_failure:1.0 ~iterations_per_hour:10.0);
  check_float "no failure" 1.0
    (Sfp.reliability ~per_iteration_failure:0.0 ~iterations_per_hour:1e6);
  let r =
    Sfp.reliability ~per_iteration_failure:9.6e-10 ~iterations_per_hour:10_000.0
  in
  check_close 1e-9 "Appendix A.2 reliability" 0.99999040004 r

(* --- The full Appendix A.2 computation --- *)

let test_appendix_a2 () =
  let a1 = Sfp.node_analysis [| 1.2e-5; 1.3e-5 |] in
  let a2 = Sfp.node_analysis [| 1.2e-5; 1.3e-5 |] in
  check_float "Pr(0; N1^2) = 0.99997500015" 0.99997500015 (Sfp.pr_zero a1);
  (* The paper prints 0.000024999844 using the unrounded Pr(0); with the
     grain-rounded Pr(0) the pessimistic value is one grain higher. *)
  check_close 5e-11 "Pr(f>0) ~ 0.000024999844" 2.4999844e-5
    (Sfp.pr_exceeds a1 ~k:0);
  check_float "Pr(1) = 0.00002499937" 0.00002499937 (Sfp.pr_faults a1 ~f:1);
  check_float "Pr(f>1) = 4.8e-10" 4.8e-10 (Sfp.pr_exceeds a1 ~k:1);
  let union_k0 = Sfp.system_failure_per_iteration [| a1; a2 |] ~k:[| 0; 0 |] in
  let rel_k0 =
    Sfp.reliability ~per_iteration_failure:union_k0 ~iterations_per_hour:10_000.0
  in
  check_close 1e-7 "k=0 reliability 0.60652871884" 0.60652871884 rel_k0;
  Alcotest.(check bool) "k=0 misses the goal" true (rel_k0 < 1.0 -. 1e-5);
  let union_k1 = Sfp.system_failure_per_iteration [| a1; a2 |] ~k:[| 1; 1 |] in
  check_float "union = 9.6e-10" 9.6e-10 union_k1;
  let rel_k1 =
    Sfp.reliability ~per_iteration_failure:union_k1 ~iterations_per_hour:10_000.0
  in
  Alcotest.(check bool) "k=1 meets the goal" true (rel_k1 >= 1.0 -. 1e-5)

(* --- Design-level evaluation --- *)

let test_evaluate_fig4a () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let v = Sfp.evaluate problem design in
  check_close 1e-9 "per-hour reliability" 0.99999040004
    v.Sfp.reliability_per_hour;
  Alcotest.(check bool) "meets goal" true v.Sfp.meets_goal;
  check_float "goal" (1.0 -. 1e-5) v.Sfp.goal;
  check_float "per-iteration failure" 9.6e-10 v.Sfp.per_iteration_failure

let test_evaluate_fig4a_k0 () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design =
    Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |]
  in
  let v = Sfp.evaluate problem design in
  Alcotest.(check bool) "k=0 violates the goal" false v.Sfp.meets_goal;
  check_close 1e-7 "reliability ~ 0.6065" 0.60652871884 v.Sfp.reliability_per_hour

let test_meets_goal_shortcut () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  Alcotest.(check bool) "fig4a meets" true
    (Sfp.meets_goal problem (Ftes_cc.Fig_examples.fig4a problem));
  Alcotest.(check bool) "fig4a with k=0 does not" false
    (Sfp.meets_goal problem
       (Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |]))

(* --- Fig. 3 re-execution counts through the analysis --- *)

let fig3_k level =
  let problem = Ftes_cc.Fig_examples.fig3_problem () in
  let design =
    Design.make problem ~members:[| 0 |] ~levels:[| level |] ~reexecs:[| 0 |]
      ~mapping:[| 0 |]
  in
  match Ftes_core.Re_execution_opt.for_mapping problem design with
  | None -> -1
  | Some k -> k.(0)

let test_fig3_reexecution_counts () =
  Alcotest.(check int) "h=1 needs k=6" 6 (fig3_k 1);
  Alcotest.(check int) "h=2 needs k=2" 2 (fig3_k 2);
  Alcotest.(check int) "h=3 needs k=1" 1 (fig3_k 3)

(* Monotonicity: hardening can only reduce the required k. *)
let prop_k_monotone_in_hardening =
  QCheck.Test.make ~count:50 ~name:"required k never grows with hardening"
    QCheck.(int_bound 500)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed ~n:8 ~ser:1e-10 () in
      let rec check level prev_total =
        if level > Ftes_model.Problem.levels problem 0 then true
        else begin
          let design = Helpers.design_on_all_nodes ~levels:level problem in
          match Ftes_core.Re_execution_opt.for_mapping problem design with
          | None -> false
          | Some k ->
              let total = Array.fold_left ( + ) 0 k in
              total <= prev_total && check (level + 1) total
        end
      in
      check 1 max_int)

(* Boosting any node's k never hurts the per-iteration failure. *)
let prop_union_monotone_in_k =
  QCheck.Test.make ~count:100 ~name:"union failure decreases with k"
    QCheck.(pair (list_of_size Gen.(1 -- 3) (float_bound_inclusive 0.1)) (int_bound 4))
    (fun (ps, k) ->
      let a = Sfp.node_analysis (Array.of_list ps) in
      Sfp.system_failure_per_iteration [| a |] ~k:[| k + 1 |]
      <= Sfp.system_failure_per_iteration [| a |] ~k:[| k |] +. 1e-15)

(* --- The closed-form bound (Ftes_sfp.Bound) --- *)

module Bound = Ftes_sfp.Bound

let test_bound_values () =
  let p = [| 0.01; 0.02 |] in
  check_close 1e-12 "sum" 0.03 (Bound.sum_check p);
  (* S^(k+1)/(1-S) for k = 0: 0.0009/0.97 *)
  check_close 2e-11 "k=1: S^2/(1-S)" (0.03 *. 0.03 /. 0.97)
    (Bound.pr_exceeds_upper p ~k:1);
  check_close 1e-12 "empty node" 0.0 (Bound.pr_exceeds_upper [||] ~k:0)

let test_bound_degenerate () =
  check_close 1e-12 "S >= 1 degenerates to 1" 1.0
    (Bound.pr_exceeds_upper [| 0.6; 0.6 |] ~k:3)

let test_bound_validation () =
  Alcotest.check_raises "negative k" (Invalid_argument "Bound: negative k")
    (fun () -> ignore (Bound.pr_exceeds_upper [| 0.1 |] ~k:(-1)));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Bound: probabilities must lie in [0, 1)") (fun () ->
      ignore (Bound.pr_exceeds_upper [| 1.0 |] ~k:0))

let test_bound_required_k () =
  let p = [| 0.01; 0.01 |] in
  (match Bound.required_k p ~budget:1e-6 ~kmax:10 with
  | Some k -> Alcotest.(check bool) "found small k" true (k >= 1 && k <= 4)
  | None -> Alcotest.fail "reachable");
  Alcotest.(check bool) "unreachable for absurd budget" true
    (Bound.required_k [| 0.4 |] ~budget:1e-30 ~kmax:3 = None)

let test_bound_is_sound_known () =
  List.iter
    (fun (p, k) ->
      Alcotest.(check bool)
        (Printf.sprintf "sound at k=%d" k)
        true (Bound.is_sound p ~k))
    [ ([| 0.01; 0.02; 0.03 |], 0);
      ([| 0.01; 0.02; 0.03 |], 2);
      ([| 1.2e-5; 1.3e-5 |], 1);
      ([| 0.2 |], 3) ]

let prop_bound_sound =
  QCheck.Test.make ~count:200 ~name:"closed-form bound dominates the exact value"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5) (float_bound_inclusive 0.15))
        (int_bound 5))
    (fun (ps, k) -> Bound.is_sound (Array.of_list ps) ~k)

let prop_bound_monotone =
  QCheck.Test.make ~count:200 ~name:"bound decreases with k"
    QCheck.(list_of_size Gen.(1 -- 5) (float_bound_inclusive 0.15))
    (fun ps ->
      let p = Array.of_list ps in
      let rec check k =
        k > 5
        || (Bound.pr_exceeds_upper p ~k:(k + 1) <= Bound.pr_exceeds_upper p ~k +. 1e-15
           && check (k + 1))
      in
      check 0)

(* --- Per-process retry analysis --- *)

module Per_process = Ftes_sfp.Per_process

let test_pp_process_failure () =
  check_close 1e-12 "k=0 is p" 0.04 (Per_process.process_failure ~p:0.04 ~k:0);
  check_close 1e-11 "k=2 is p^3" (0.04 ** 3.0)
    (Per_process.process_failure ~p:0.04 ~k:2);
  Alcotest.check_raises "negative k"
    (Invalid_argument "Per_process.process_failure: negative k") (fun () ->
      ignore (Per_process.process_failure ~p:0.1 ~k:(-1)))

let test_pp_node_failure () =
  (* Two processes, no retries: 1 - (1-p1)(1-p2). *)
  check_close 1e-9 "k=0 matches the independent union" 0.28
    (Per_process.node_failure ~probs:[| 0.1; 0.2 |] ~k:[| 0; 0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Per_process.node_failure: length mismatch") (fun () ->
      ignore (Per_process.node_failure ~probs:[| 0.1 |] ~k:[| 0; 0 |]))

let test_pp_vs_shared_k0 () =
  (* With zero budgets the two analyses coincide (both are 1 - Pr(0)). *)
  let probs = [| 1.2e-5; 1.3e-5 |] in
  let shared = Sfp.pr_exceeds (Sfp.node_analysis probs) ~k:0 in
  let pp = Per_process.node_failure ~probs ~k:[| 0; 0 |] in
  check_close 2e-11 "same at k=0" shared pp

let test_pp_shared_budget_dominates () =
  (* A shared budget of K covers every split of K retries, so the shared
     node-failure probability with k=K is at most the per-process one
     with budgets summing to K. *)
  let probs = [| 0.03; 0.02; 0.05 |] in
  let shared = Sfp.pr_exceeds (Sfp.node_analysis probs) ~k:2 in
  List.iter
    (fun split ->
      let pp = Per_process.node_failure ~probs ~k:split in
      Alcotest.(check bool) "shared k=2 at least as reliable" true
        (shared <= pp +. 1e-12))
    [ [| 2; 0; 0 |]; [| 0; 2; 0 |]; [| 1; 1; 0 |]; [| 0; 1; 1 |] ]

let test_pp_meets_goal () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  (* One retry per process is more redundancy than the shared k=1 per
     node that already meets the goal. *)
  Alcotest.(check bool) "1 retry each meets the goal" true
    (Per_process.meets_goal problem design ~k:[| 1; 1; 1; 1 |]);
  Alcotest.(check bool) "no retries misses it" false
    (Per_process.meets_goal problem design ~k:[| 0; 0; 0; 0 |])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_sfp"
    [ ( "node analysis",
        [ Alcotest.test_case "empty node" `Quick test_pr_zero_empty;
          Alcotest.test_case "Pr(0) known value" `Quick test_pr_zero_known;
          Alcotest.test_case "single-process Pr(f)" `Quick test_pr_faults_single_process;
          Alcotest.test_case "pr_faults bounds" `Quick test_pr_faults_bounds;
          Alcotest.test_case "validation" `Quick test_node_analysis_validation;
          Alcotest.test_case "k=0 exceedance" `Quick test_pr_exceeds_k0;
          Alcotest.test_case "monotone in k" `Quick test_pr_exceeds_monotone;
          Alcotest.test_case "matches enumeration" `Quick
            test_pr_exceeds_matches_enumeration;
          q prop_dp_equals_enumeration ] );
      ( "system",
        [ Alcotest.test_case "union formula" `Quick test_union_formula;
          Alcotest.test_case "union length mismatch" `Quick test_union_length_mismatch;
          Alcotest.test_case "reliability edges" `Quick test_reliability_edge_cases;
          q prop_union_monotone_in_k ] );
      ( "appendix A.2",
        [ Alcotest.test_case "worked example" `Quick test_appendix_a2;
          Alcotest.test_case "evaluate fig4a" `Quick test_evaluate_fig4a;
          Alcotest.test_case "evaluate fig4a k=0" `Quick test_evaluate_fig4a_k0;
          Alcotest.test_case "meets_goal" `Quick test_meets_goal_shortcut ] );
      ( "fig3",
        [ Alcotest.test_case "re-execution counts 6/2/1" `Quick
            test_fig3_reexecution_counts;
          q prop_k_monotone_in_hardening ] );
      ( "bound",
        [ Alcotest.test_case "values" `Quick test_bound_values;
          Alcotest.test_case "degenerate" `Quick test_bound_degenerate;
          Alcotest.test_case "validation" `Quick test_bound_validation;
          Alcotest.test_case "required k" `Quick test_bound_required_k;
          Alcotest.test_case "sound on known vectors" `Quick
            test_bound_is_sound_known;
          q prop_bound_sound;
          q prop_bound_monotone ] );
      ( "per_process",
        [ Alcotest.test_case "process failure" `Quick test_pp_process_failure;
          Alcotest.test_case "node failure" `Quick test_pp_node_failure;
          Alcotest.test_case "coincides with shared at k=0" `Quick
            test_pp_vs_shared_k0;
          Alcotest.test_case "shared budget dominates splits" `Quick
            test_pp_shared_budget_dominates;
          Alcotest.test_case "meets_goal" `Quick test_pp_meets_goal ] ) ]
