(* Tests for the built-in case studies: the Fig. 1/3/4 data and the
   32-process cruise controller.  The cruise-controller section pins the
   paper's qualitative result: MIN unschedulable, MAX and OPT
   schedulable, OPT far cheaper than MAX. *)

module CC = Ftes_cc.Cruise_control
module Fig = Ftes_cc.Fig_examples
module Config = Ftes_core.Config
module Design = Ftes_model.Design
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Problem = Ftes_model.Problem
module Task_graph = Ftes_model.Task_graph

let check_float = Alcotest.(check (float 1e-9))

(* --- Fig. 1 data --- *)

let test_fig1_tables () =
  let p = Fig.fig1_problem () in
  Alcotest.(check int) "two node types" 2 (Problem.n_library p);
  check_float "N1 h1 cost" 16.0 (Problem.cost p ~node:0 ~level:1);
  check_float "N1 h3 cost" 64.0 (Problem.cost p ~node:0 ~level:3);
  check_float "N2 h2 cost" 40.0 (Problem.cost p ~node:1 ~level:2);
  check_float "t(P2, N1, h2)" 90.0 (Problem.wcet p ~node:0 ~level:2 ~proc:1);
  check_float "p(P4, N1, h1)" 1.6e-3 (Problem.pfail p ~node:0 ~level:1 ~proc:3);
  check_float "t(P1, N2, h1)" 50.0 (Problem.wcet p ~node:1 ~level:1 ~proc:0);
  check_float "p(P1, N2, h3)" 1e-10 (Problem.pfail p ~node:1 ~level:3 ~proc:0)

let test_fig1_graph_is_diamond () =
  let p = Fig.fig1_problem () in
  let g = Problem.graph p in
  Alcotest.(check int) "4 processes" 4 (Task_graph.n g);
  Alcotest.(check (list int)) "P1 is the source" [ 0 ] (Task_graph.sources g);
  Alcotest.(check (list int)) "P4 is the sink" [ 3 ] (Task_graph.sinks g)

let test_fig4_designs_valid () =
  let p = Fig.fig1_problem () in
  List.iter
    (fun (name, d) ->
      Alcotest.(check bool) name true (Design.validate p d = Ok ()))
    [ ("4a", Fig.fig4a p); ("4b", Fig.fig4b p); ("4c", Fig.fig4c p);
      ("4d", Fig.fig4d p); ("4e", Fig.fig4e p) ]

let test_fig4_costs () =
  let p = Fig.fig1_problem () in
  check_float "Ca = 72" 72.0 (Design.cost p (Fig.fig4a p));
  check_float "Cb = 32" 32.0 (Design.cost p (Fig.fig4b p));
  check_float "Cc = 40" 40.0 (Design.cost p (Fig.fig4c p));
  check_float "Cd = 64" 64.0 (Design.cost p (Fig.fig4d p));
  check_float "Ce = 80" 80.0 (Design.cost p (Fig.fig4e p))

let test_fig3_table () =
  let p = Fig.fig3_problem () in
  check_float "h1 WCET" 80.0 (Problem.wcet p ~node:0 ~level:1 ~proc:0);
  check_float "h2 WCET" 100.0 (Problem.wcet p ~node:0 ~level:2 ~proc:0);
  check_float "h3 WCET" 160.0 (Problem.wcet p ~node:0 ~level:3 ~proc:0);
  check_float "h1 pfail" 4e-2 (Problem.pfail p ~node:0 ~level:1 ~proc:0);
  check_float "h1 cost" 10.0 (Problem.cost p ~node:0 ~level:1)

(* --- Cruise controller --- *)

let test_cc_shape () =
  let p = CC.problem () in
  Alcotest.(check int) "32 processes" 32 (Problem.n_processes p);
  Alcotest.(check int) "3 modules" 3 (Problem.n_library p);
  Alcotest.(check int) "5 h-versions" 5 (Problem.levels p 0);
  Alcotest.(check string) "node names" "ETM"
    (Problem.node p 0).Ftes_model.Platform.node_name;
  check_float "deadline 300 ms" 300.0 p.Problem.app.Ftes_model.Application.deadline_ms;
  check_float "gamma 1.2e-5" 1.2e-5 p.Problem.app.Ftes_model.Application.gamma

let test_cc_graph () =
  let g = CC.graph () in
  Alcotest.(check int) "32 nodes" 32 (Task_graph.n g);
  Alcotest.(check bool) "has meaningful structure" true (Task_graph.n_edges g > 30);
  (* The wheel sensors feed the filter. *)
  let filter = 11 in
  Alcotest.(check int) "wheel filter fans in" 4 (Task_graph.in_degree g filter)

let test_cc_affinity () =
  let p = CC.problem () in
  (* throttle_sensor (proc 0) is an ETM process: 1.5x slower elsewhere. *)
  let home = Problem.wcet p ~node:0 ~level:1 ~proc:0 in
  let away = Problem.wcet p ~node:1 ~level:1 ~proc:0 in
  check_float "off-home penalty" (home *. 1.5) away;
  (* driver_buttons (proc 23) is a core process: same everywhere. *)
  check_float "core process uniform"
    (Problem.wcet p ~node:0 ~level:1 ~proc:23)
    (Problem.wcet p ~node:2 ~level:1 ~proc:23)

let test_cc_deterministic () =
  let a = CC.problem () and b = CC.problem () in
  check_float "same table entry"
    (Problem.wcet a ~node:1 ~level:3 ~proc:12)
    (Problem.wcet b ~node:1 ~level:3 ~proc:12)

let cc_solution config = Design_strategy.run ~config (CC.problem ())

let test_cc_min_unschedulable () =
  Alcotest.(check bool) "MIN fails on the CC (paper)" true
    (cc_solution Config.min_strategy = None)

let test_cc_max_schedulable () =
  match cc_solution Config.max_strategy with
  | None -> Alcotest.fail "MAX must be schedulable (paper)"
  | Some s ->
      check_float "MAX uses all three nodes at h=5, cost 80" 80.0
        s.Design_strategy.result.Redundancy_opt.cost

let test_cc_opt_story () =
  match (cc_solution Config.default, cc_solution Config.max_strategy) with
  | Some opt, Some max_ ->
      let co = opt.Design_strategy.result.Redundancy_opt.cost in
      let cm = max_.Design_strategy.result.Redundancy_opt.cost in
      let saving = (cm -. co) /. cm in
      Alcotest.(check bool)
        (Printf.sprintf "OPT saves %.0f%% vs MAX (paper: 66%%)" (100. *. saving))
        true
        (saving >= 0.55 && saving <= 0.75);
      Alcotest.(check bool) "OPT verdict meets the goal" true
        opt.Design_strategy.verdict.Ftes_sfp.Sfp.meets_goal;
      Alcotest.(check bool) "OPT is schedulable" true
        (Ftes_sched.Schedule.length opt.Design_strategy.schedule <= 300.0 +. 1e-9)
  | None, _ -> Alcotest.fail "OPT must be feasible on the CC"
  | _, None -> Alcotest.fail "MAX must be feasible on the CC"

let test_cc_opt_mixes_levels () =
  match cc_solution Config.default with
  | None -> Alcotest.fail "OPT feasible"
  | Some s ->
      let levels = s.Design_strategy.result.Redundancy_opt.design.Design.levels in
      let reexecs = s.Design_strategy.result.Redundancy_opt.design.Design.reexecs in
      Alcotest.(check bool) "uses intermediate hardening" true
        (Array.exists (fun h -> h > 1 && h < 5) levels);
      Alcotest.(check bool) "uses software re-execution" true
        (Array.exists (fun k -> k > 0) reexecs)

let test_cc_schedule_valid () =
  match cc_solution Config.default with
  | None -> Alcotest.fail "OPT feasible"
  | Some s -> (
      let p = CC.problem () in
      let d = s.Design_strategy.result.Redundancy_opt.design in
      match Ftes_sched.Schedule.validate p d s.Design_strategy.schedule with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "invalid CC schedule: %s" msg)

let test_cc_process_names () =
  Alcotest.(check int) "32 names" 32 (Array.length CC.process_names);
  let p = CC.problem () in
  Alcotest.(check string) "first process" "throttle_sensor"
    (Ftes_model.Application.process_name p.Problem.app 0);
  Alcotest.(check string) "last process" "logger"
    (Ftes_model.Application.process_name p.Problem.app 31)

let () =
  Alcotest.run "ftes_cc"
    [ ( "fig_examples",
        [ Alcotest.test_case "fig1 tables" `Quick test_fig1_tables;
          Alcotest.test_case "fig1 graph" `Quick test_fig1_graph_is_diamond;
          Alcotest.test_case "fig4 designs valid" `Quick test_fig4_designs_valid;
          Alcotest.test_case "fig4 costs" `Quick test_fig4_costs;
          Alcotest.test_case "fig3 table" `Quick test_fig3_table ] );
      ( "cruise_control",
        [ Alcotest.test_case "shape" `Quick test_cc_shape;
          Alcotest.test_case "graph" `Quick test_cc_graph;
          Alcotest.test_case "affinity" `Quick test_cc_affinity;
          Alcotest.test_case "deterministic" `Quick test_cc_deterministic;
          Alcotest.test_case "process names" `Quick test_cc_process_names ] );
      ( "case study",
        [ Alcotest.test_case "MIN unschedulable" `Quick test_cc_min_unschedulable;
          Alcotest.test_case "MAX schedulable at cost 80" `Quick
            test_cc_max_schedulable;
          Alcotest.test_case "OPT ~66% cheaper" `Quick test_cc_opt_story;
          Alcotest.test_case "OPT mixes hardware and software" `Quick
            test_cc_opt_mixes_levels;
          Alcotest.test_case "OPT schedule validates" `Quick test_cc_schedule_valid ] ) ]
