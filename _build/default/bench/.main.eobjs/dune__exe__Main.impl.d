bench/main.ml: Filename Ftes_exp Ftes_util List Micro Printf String Sys
