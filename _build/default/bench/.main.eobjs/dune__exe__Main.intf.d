bench/main.mli:
