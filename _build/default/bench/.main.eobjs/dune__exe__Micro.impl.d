bench/micro.ml: Analyze Array Bechamel Benchmark Ftes_cc Ftes_core Ftes_faultsim Ftes_gen Ftes_model Ftes_sched Ftes_sfp Ftes_util Hashtbl Instance Lazy List Measure Printf Staged Test Time Toolkit
