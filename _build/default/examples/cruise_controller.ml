(* The paper's real-life case study in detail: the 32-process vehicle
   cruise controller on {ETM, ABS, TCM}.

   Compares the MIN / MAX / OPT strategies, shows the optimized design
   and its static schedule, and validates the chosen design by
   fault-injection simulation.

   Run with:  dune exec examples/cruise_controller.exe *)

module Config = Ftes_core.Config
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler
module Executor = Ftes_faultsim.Executor

let () =
  let problem = Ftes_cc.Cruise_control.problem () in
  Format.printf "%a@.@." Ftes_model.Problem.pp problem;

  print_endline (Ftes_exp.Figures.render_cc (Ftes_exp.Figures.cc_study ()));

  match Ftes_core.Design_strategy.run ~config:Config.default problem with
  | None -> print_endline "OPT found no feasible design (unexpected)"
  | Some s ->
      let design = s.result.Ftes_core.Redundancy_opt.design in
      print_endline "The OPT design in detail:";
      Format.printf "%a@." (fun ppf () -> Design.pp ppf problem design) ();
      Array.iteri
        (fun slot j ->
          let nt = Ftes_model.Problem.node problem j in
          let procs = Design.procs_on design ~member:slot in
          Printf.printf "  %s (h=%d, k=%d): %s\n"
            nt.Ftes_model.Platform.node_name design.Design.levels.(slot)
            design.Design.reexecs.(slot)
            (String.concat ", "
               (List.map
                  (Ftes_model.Application.process_name
                     problem.Ftes_model.Problem.app)
                  procs)))
        design.Design.members;
      print_newline ();
      print_string
        (Ftes_sched.Schedule.to_gantt problem design
           (Scheduler.schedule problem design));

      (* Fault-injection validation: boost the (tiny) failure
         probabilities so that re-executions actually happen, and check
         that the budget-exceedance rate matches the SFP prediction. *)
      let prng = Ftes_util.Prng.create 7 in
      let campaign =
        Executor.run_campaign ~boost:3_000.0 prng problem design
          ~trials:50_000
      in
      Printf.printf
        "\nfault injection (boost 3000x, %d runs):\n\
        \  observed system-failure rate  %.3e\n\
        \  SFP-predicted rate            %.3e\n\
        \  within-budget deadline misses %d\n"
        campaign.Executor.trials campaign.Executor.observed_failure_rate
        campaign.Executor.predicted_failure_rate
        campaign.Executor.deadline_misses;
      print_endline
        "(the deadline misses occur only because the 3000x boost makes\n\
         cross-node fault cascades — which the paper's shared-slack bound\n\
         does not charge — a common event instead of a ~1e-9 one; see the\n\
         exact worst-case analysis in the benchmark harness)"
