examples/motivational.mli:
