examples/cruise_controller.ml: Array Format Ftes_cc Ftes_core Ftes_exp Ftes_faultsim Ftes_model Ftes_sched Ftes_util List Printf String
