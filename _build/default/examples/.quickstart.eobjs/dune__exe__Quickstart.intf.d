examples/quickstart.mli:
