examples/design_space.ml: Array Format Ftes_core Ftes_gen Ftes_model Ftes_sched Ftes_util Printf
