examples/quickstart.ml: Array Format Ftes_core Ftes_faultsim Ftes_model Ftes_sched Ftes_sfp Ftes_util Printf
