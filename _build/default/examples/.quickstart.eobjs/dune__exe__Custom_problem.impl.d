examples/custom_problem.ml: Array Filename Format Ftes_core Ftes_gen Ftes_model Fun List Printf String Sys
