examples/cruise_controller.mli:
