examples/custom_problem.mli:
