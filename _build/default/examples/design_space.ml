(* Design-space walk: how hardening levels, re-execution counts, cost
   and worst-case schedule length interact on a synthetic application —
   the Section 5 trade-off, measured instead of illustrated.

   For one generated application mapped on two nodes, sweep all
   hardening-level pairs, derive the re-execution counts from the SFP
   analysis, and tabulate cost vs schedule length.  The Pareto-optimal
   rows are the designs the OPT heuristic navigates between.

   Run with:  dune exec examples/design_space.exe *)

module Workload = Ftes_gen.Workload
module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Scheduler = Ftes_sched.Scheduler
module Text_table = Ftes_util.Text_table

let () =
  let spec = Workload.generate_spec ~seed:2024 ~index:3 ~n_processes:20 () in
  let problem =
    Workload.problem_of_spec { Workload.ser = 1e-10; hpd = 0.5 } spec
  in
  let deadline = problem.Problem.app.Ftes_model.Application.deadline_ms in
  Format.printf "%a@.@." Problem.pp problem;

  let members = [| 0; 1 |] in
  let mapping =
    Ftes_core.Mapping_opt.initial_mapping ~config:Ftes_core.Config.default
      problem ~members
  in
  let levels_of j = Problem.levels problem members.(j) in
  let table =
    Text_table.create
      ~headers:[ "h(N1)"; "h(N2)"; "k(N1)"; "k(N2)"; "cost"; "SL (ms)"; "feasible" ]
  in
  Text_table.set_aligns table
    Text_table.[ Right; Right; Right; Right; Right; Right; Left ];
  let best = ref None in
  for h1 = 1 to levels_of 0 do
    for h2 = 1 to levels_of 1 do
      let base =
        Design.make problem ~members ~levels:[| h1; h2 |] ~reexecs:[| 0; 0 |]
          ~mapping
      in
      match Ftes_core.Re_execution_opt.optimize problem base with
      | None ->
          Text_table.add_row table
            [ string_of_int h1; string_of_int h2; "-"; "-"; "-"; "-";
              "goal unreachable" ]
      | Some design ->
          let sl = Scheduler.schedule_length problem design in
          let cost = Design.cost problem design in
          let feasible = sl <= deadline +. 1e-9 in
          if feasible then begin
            match !best with
            | Some (c, _, _) when c <= cost -> ()
            | Some _ | None -> best := Some (cost, (h1, h2), design)
          end;
          Text_table.add_row table
            [ string_of_int h1; string_of_int h2;
              string_of_int design.Design.reexecs.(0);
              string_of_int design.Design.reexecs.(1);
              Printf.sprintf "%.0f" cost;
              Printf.sprintf "%.1f" sl;
              (if feasible then "yes" else "no (misses deadline)") ]
    done
  done;
  Printf.printf "Hardening-level sweep on two nodes (deadline %.1f ms):\n" deadline;
  Text_table.print table;
  (match !best with
  | None -> print_endline "no feasible hardening vector for this mapping"
  | Some (cost, (h1, h2), _) ->
      Printf.printf
        "cheapest feasible hardening for this fixed mapping: (h%d, h%d) at \
         cost %.0f\n"
        h1 h2 cost);

  (* The full strategy also optimizes the mapping and the architecture. *)
  match
    Ftes_core.Design_strategy.run ~config:Ftes_core.Config.default problem
  with
  | None -> print_endline "DesignStrategy: infeasible"
  | Some s ->
      Printf.printf
        "DesignStrategy (architecture + mapping + redundancy): cost %.0f, \
         SL %.1f ms\n"
        s.result.Ftes_core.Redundancy_opt.cost
        s.result.Ftes_core.Redundancy_opt.schedule_length
