(* Walk through the paper's motivational examples (Sections 3 and 5):
   Fig. 2 (re-execution vs hardening on one process), Fig. 3 (hardware
   recovery vs software recovery), Fig. 4 (the five architecture
   alternatives for the Fig. 1 application) and the Appendix A.2
   computation.

   Run with:  dune exec examples/motivational.exe *)

module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp
module Text_table = Ftes_util.Text_table

let () =
  print_endline "=== Fig. 2 / Fig. 3: hardware recovery vs software recovery ===";
  let problem = Ftes_cc.Fig_examples.fig3_problem () in
  let table =
    Text_table.create
      ~headers:[ "h-version"; "WCET"; "p(fail)"; "cost"; "k needed"; "worst case (ms)"; "meets D=360?" ]
  in
  List.iter
    (fun level ->
      let v =
        Ftes_model.Platform.version (Ftes_model.Problem.node problem 0) ~level
      in
      let design =
        Design.make problem ~members:[| 0 |] ~levels:[| level |]
          ~reexecs:[| 0 |] ~mapping:[| 0 |]
      in
      match Ftes_core.Re_execution_opt.for_mapping problem design with
      | None -> Text_table.add_row table [ Printf.sprintf "h=%d" level; "-" ]
      | Some k ->
          let design = Design.with_reexecs design k in
          let sl = Scheduler.schedule_length problem design in
          Text_table.add_row table
            [ Printf.sprintf "h=%d" level;
              Printf.sprintf "%.0f" v.Ftes_model.Platform.wcet_ms.(0);
              Printf.sprintf "%g" v.Ftes_model.Platform.pfail.(0);
              Printf.sprintf "%.0f" v.Ftes_model.Platform.cost;
              string_of_int k.(0);
              Printf.sprintf "%.0f" sl;
              (if sl <= 360.0 then "yes" else "no") ])
    [ 1; 2; 3 ];
  Text_table.print table;
  print_endline
    "The paper's Fig. 3: 6 re-executions at h=1 miss the deadline; h=2 needs\n\
     only 2 and fits; h=3 costs twice as much for the same worst case, so\n\
     the h=2 version should be chosen.\n";

  print_endline "=== Fig. 4: architecture alternatives for the Fig. 1 application ===";
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let alternatives =
    [ ("4a: N1(h2){P1,P2} + N2(h2){P3,P4}, k=(1,1)", Ftes_cc.Fig_examples.fig4a problem);
      ("4b: N1(h2) mono, k=2", Ftes_cc.Fig_examples.fig4b problem);
      ("4c: N2(h2) mono, k=2", Ftes_cc.Fig_examples.fig4c problem);
      ("4d: N1(h3) mono, k=0", Ftes_cc.Fig_examples.fig4d problem);
      ("4e: N2(h3) mono, k=0", Ftes_cc.Fig_examples.fig4e problem) ]
  in
  let table =
    Text_table.create
      ~headers:[ "alternative"; "cost"; "SL (ms)"; "schedulable"; "reliable" ]
  in
  List.iter
    (fun (name, design) ->
      let sl = Scheduler.schedule_length problem design in
      let v = Sfp.evaluate problem design in
      Text_table.add_row table
        [ name;
          Printf.sprintf "%.0f" (Design.cost problem design);
          Printf.sprintf "%.0f" sl;
          (if sl <= 360.0 then "yes" else "no");
          (if v.Sfp.meets_goal then "yes" else "no") ])
    alternatives;
  Text_table.print table;

  print_endline "Schedule of alternative 4a (the paper's choice):";
  let design = Ftes_cc.Fig_examples.fig4a problem in
  print_string
    (Ftes_sched.Schedule.to_gantt problem design
       (Scheduler.schedule problem design));
  print_newline ();

  print_endline "=== Appendix A.2: the SFP computation for alternative 4a ===";
  let p_n1 = [| 1.2e-5; 1.3e-5 |] and p_n2 = [| 1.2e-5; 1.3e-5 |] in
  let a1 = Sfp.node_analysis p_n1 and a2 = Sfp.node_analysis p_n2 in
  Printf.printf "Pr(0; N1^2) = %.11f   (paper: 0.99997500015)\n" (Sfp.pr_zero a1);
  Printf.printf "Pr(f>0; N1^2) = %.12f (paper: 0.000024999844)\n"
    (Sfp.pr_exceeds a1 ~k:0);
  Printf.printf "Pr(f>1; N1^2) = %.2e     (paper: 4.8e-10)\n" (Sfp.pr_exceeds a1 ~k:1);
  let union =
    Sfp.system_failure_per_iteration [| a1; a2 |] ~k:[| 1; 1 |]
  in
  Printf.printf "Pr(union, k=1,1) = %.2e  (paper: 9.6e-10)\n" union;
  let reliability =
    Sfp.reliability ~per_iteration_failure:union ~iterations_per_hour:10_000.0
  in
  Printf.printf "system reliability = %.11f (paper: 0.99999040004) -> %s\n"
    reliability
    (if reliability >= 1.0 -. 1e-5 then "goal met" else "goal violated");

  print_endline
    "\n=== What our optimizer finds for the Fig. 1 application ===";
  (match Ftes_core.Design_strategy.run ~config:Ftes_core.Config.default problem with
  | None -> print_endline "no feasible design"
  | Some s ->
      let d = s.result.Ftes_core.Redundancy_opt.design in
      Format.printf "%a@." (fun ppf () -> Design.pp ppf problem d) ();
      Printf.printf
        "cost %.0f beats the paper's illustrated best (72) by exploiting a\n\
         cheaper hardening/re-execution mix; SL = %.1f ms.\n"
        s.result.Ftes_core.Redundancy_opt.cost
        s.result.Ftes_core.Redundancy_opt.schedule_length);

  print_endline
    "\n=== How optimistic is the shared-slack bound on alternative 4a? ===";
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let r = Ftes_faultsim.Scenarios.worst_case problem design in
  Printf.printf
    "replaying all %d admissible fault scenarios:\n\
    \  shared bound (the paper's SL)  %.0f ms\n\
    \  exact worst case               %.0f ms  (P2 and P4 each fail once)\n\
    \  sound conservative bound       %.0f ms\n\
     The shared model absorbs each node's faults locally and does not\n\
     charge the cross-node cascade; see DESIGN.md and the fault-injection\n\
     experiments for how rarely that matters in practice.\n"
    r.Ftes_faultsim.Scenarios.scenarios
    r.Ftes_faultsim.Scenarios.shared_bound_ms
    r.Ftes_faultsim.Scenarios.exact_worst_ms
    r.Ftes_faultsim.Scenarios.conservative_bound_ms
