(* Quickstart: model a small fault-tolerant application, let the design
   strategy pick the architecture, hardening levels, re-execution counts
   and mapping, and inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

module Task_graph = Ftes_model.Task_graph
module Application = Ftes_model.Application
module Platform = Ftes_model.Platform
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp

let () =
  (* 1. The application: four processes in a diamond, 360 ms deadline,
     a reliability goal of 1 - 1e-5 per hour, 15 ms recovery overhead.
     This is exactly Fig. 1 of the paper. *)
  let graph =
    Task_graph.make ~n:4
      [ { Task_graph.src = 0; dst = 1; transmission_ms = 10.0 };
        { Task_graph.src = 0; dst = 2; transmission_ms = 10.0 };
        { Task_graph.src = 1; dst = 3; transmission_ms = 10.0 };
        { Task_graph.src = 2; dst = 3; transmission_ms = 10.0 } ]
  in
  let app =
    Application.make ~name:"quickstart" ~graph ~deadline_ms:360.0 ~gamma:1e-5
      ~recovery_overhead_ms:15.0 ()
  in

  (* 2. The platform: nodes in several hardened versions.  Each version
     gives, per process, the WCET and the failure probability of one
     execution, plus the version's cost. *)
  let node name costs wcets pfails =
    Platform.node_type ~name
      ~versions:
        (Array.init (Array.length costs) (fun i ->
             Platform.hversion ~level:(i + 1) ~cost:costs.(i)
               ~wcet_ms:wcets.(i) ~pfail:pfails.(i)))
  in
  let n1 =
    node "N1"
      [| 16.0; 32.0; 64.0 |]
      [| [| 60.; 75.; 60.; 75. |];
         [| 75.; 90.; 75.; 90. |];
         [| 90.; 105.; 90.; 105. |] |]
      [| [| 1.2e-3; 1.3e-3; 1.4e-3; 1.6e-3 |];
         [| 1.2e-5; 1.3e-5; 1.4e-5; 1.6e-5 |];
         [| 1.2e-10; 1.3e-10; 1.4e-10; 1.6e-10 |] |]
  in
  let n2 =
    node "N2"
      [| 20.0; 40.0; 80.0 |]
      [| [| 50.; 65.; 50.; 65. |];
         [| 60.; 75.; 60.; 75. |];
         [| 75.; 90.; 75.; 90. |] |]
      [| [| 1e-3; 1.2e-3; 1.2e-3; 1.3e-3 |];
         [| 1e-5; 1.2e-5; 1.2e-5; 1.3e-5 |];
         [| 1e-10; 1.2e-10; 1.2e-10; 1.3e-10 |] |]
  in
  let problem = Problem.make ~app ~library:[| n1; n2 |] in
  Format.printf "problem: %a@." Problem.pp problem;

  (* 3. Optimize: architecture selection + hardening + re-executions +
     mapping, minimizing the total cost under the deadline and the
     reliability goal. *)
  match Ftes_core.Design_strategy.run ~config:Ftes_core.Config.default problem with
  | None -> print_endline "no feasible design"
  | Some solution ->
      let design = solution.result.Ftes_core.Redundancy_opt.design in
      Format.printf "%a@." (fun ppf () -> Design.pp ppf problem design) ();
      Printf.printf "worst-case schedule length: %.1f ms (deadline %.1f ms)\n"
        solution.result.Ftes_core.Redundancy_opt.schedule_length 360.0;
      let v = solution.verdict in
      Printf.printf "reliability: %.11f per hour (goal %.5f) -> %s\n"
        v.Sfp.reliability_per_hour v.Sfp.goal
        (if v.Sfp.meets_goal then "met" else "violated");

      (* 4. Look at the static schedule. *)
      let schedule = Scheduler.schedule problem design in
      print_newline ();
      print_string (Ftes_sched.Schedule.to_gantt problem design schedule);

      (* 5. Validate the analysis by injecting faults (probabilities
         boosted so failures are observable in 50k runs). *)
      let prng = Ftes_util.Prng.create 2025 in
      let campaign =
        Ftes_faultsim.Executor.run_campaign ~boost:100.0 prng problem design
          ~trials:50_000
      in
      Printf.printf
        "\nfault injection (100x boost, %d runs): observed failure rate %.2e, \
         SFP predicts %.2e\n"
        campaign.Ftes_faultsim.Executor.trials
        campaign.Ftes_faultsim.Executor.observed_failure_rate
        campaign.Ftes_faultsim.Executor.predicted_failure_rate
