(* Bring your own system: model a small radar front-end from scratch,
   save it as JSON (the CLI's exchange format), reload it, and compare
   the MIN / MAX / OPT strategies on it.

   Run with:  dune exec examples/custom_problem.exe *)

module Task_graph = Ftes_model.Task_graph
module Application = Ftes_model.Application
module Platform = Ftes_model.Platform
module Problem = Ftes_model.Problem
module Problem_io = Ftes_model.Problem_io
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt

(* An 8-process radar front-end: two antenna channels are filtered and
   beamformed, targets are detected and tracked, and a health monitor
   watches the chain. *)
let radar_problem () =
  let names =
    [| "adc_ch0"; "adc_ch1"; "fir_ch0"; "fir_ch1"; "beamform"; "detect";
       "track"; "health" |]
  in
  let e src dst t = { Task_graph.src; dst; transmission_ms = t } in
  let graph =
    Task_graph.make ~n:8
      [ e 0 2 0.8; e 1 3 0.8; e 2 4 1.2; e 3 4 1.2; e 4 5 0.6; e 5 6 0.6;
        e 4 7 0.4; e 6 7 0.4 ]
  in
  let app =
    Application.make ~name:"radar-front-end" ~process_names:names ~graph
      ~deadline_ms:120.0 ~gamma:2e-5 ~recovery_overhead_ms:1.0 ()
  in
  (* Two candidate boards, three hardening levels each; the DSP board is
     faster on the signal chain, the MCU is cheap. *)
  let base = [| 6.0; 6.0; 10.0; 10.0; 16.0; 12.0; 9.0; 5.0 |] in
  let board name ~cost_base ~speed ~ser =
    let tech = Ftes_gen.Platform_gen.tech ~clock_hz:1e9 ~ser_per_cycle:ser () in
    Ftes_gen.Platform_gen.node_type ~tech ~hpd:0.5 ~base_wcets_ms:base
      { Ftes_gen.Platform_gen.name; base_cost = cost_base; speed; levels = 3 }
  in
  let dsp = board "DSP" ~cost_base:5.0 ~speed:1.0 ~ser:2e-10 in
  let mcu = board "MCU" ~cost_base:2.0 ~speed:1.6 ~ser:2e-10 in
  Problem.make ~app ~library:[| dsp; mcu |]

let () =
  let problem = radar_problem () in
  Format.printf "%a@." Problem.pp problem;

  (* Persist and reload through the JSON exchange format. *)
  let path = Filename.temp_file "radar" ".json" in
  Problem_io.save path problem;
  Printf.printf "saved to %s (%d bytes)\n\n" path
    (let st = open_in_bin path in
     Fun.protect ~finally:(fun () -> close_in st) (fun () -> in_channel_length st));
  let problem =
    match Problem_io.load path with
    | Ok p -> p
    | Error e -> failwith ("reload failed: " ^ e)
  in
  Sys.remove path;

  let describe name config =
    match Design_strategy.run ~config problem with
    | None -> Printf.printf "%-3s: no schedulable & reliable design\n" name
    | Some s ->
        let d = s.Design_strategy.result.Redundancy_opt.design in
        let members =
          Array.to_list d.Ftes_model.Design.members
          |> List.mapi (fun slot j ->
                 Printf.sprintf "%s(h%d,k%d)"
                   (Problem.node problem j).Platform.node_name
                   d.Ftes_model.Design.levels.(slot)
                   d.Ftes_model.Design.reexecs.(slot))
          |> String.concat " + "
        in
        Printf.printf "%-3s: cost %5.1f  SL %6.1f ms  %s\n" name
          s.Design_strategy.result.Redundancy_opt.cost
          s.Design_strategy.result.Redundancy_opt.schedule_length members
  in
  describe "MIN" Config.min_strategy;
  describe "MAX" Config.max_strategy;
  describe "OPT" Config.default;

  (* The per-process alternative on OPT's design. *)
  match Design_strategy.run ~config:Config.default problem with
  | None -> ()
  | Some s -> (
      let d = s.Design_strategy.result.Redundancy_opt.design in
      match Ftes_core.Retry_opt.optimize problem d with
      | None -> print_endline "per-process retries cannot reach the goal"
      | Some (k, sl) ->
          Printf.printf
            "\nper-process retry budgets on the OPT design: [%s] -> SL %.1f ms\n\
             (the paper's shared budgets gave %.1f ms)\n"
            (String.concat ";" (Array.to_list (Array.map string_of_int k)))
            sl s.Design_strategy.result.Redundancy_opt.schedule_length)
