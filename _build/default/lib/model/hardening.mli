(** Hardening level schedules (Section 7 parameterization).

    A computation node is available in several {e h-versions}.  Raising
    the hardening level lowers the process failure probabilities but
    increases both the cost and the worst-case execution times
    ("hardening performance degradation", HPD). *)

val degradation : hpd:float -> level:int -> levels:int -> float
(** [degradation ~hpd ~level ~levels] is the WCET increase {e fraction}
    of h-version [level] (1-based) out of [levels] versions, for an HPD
    expressed as a fraction (e.g. [0.25] for 25%).

    Following Section 7: the minimum hardening level always degrades by
    1%, and the remaining levels degrade linearly up to [hpd] — for
    HPD = 100% and 5 levels this yields 1, 25, 50, 75, 100%.  Raises
    [Invalid_argument] for out-of-range arguments. *)

val sfp_reduction : factor:float -> level:int -> float
(** [sfp_reduction ~factor ~level] is the multiplier applied to the raw
    (level-1) failure probability at h-version [level]:
    [factor ** -(level - 1)].  The default [factor] used by the
    generators is 100, matching the two-orders-of-magnitude steps of the
    paper's Fig. 1 and Fig. 3 tables. *)

val linear_cost : base:float -> level:int -> float
(** [linear_cost ~base ~level] = [base *. float level] — the cost model
    of the synthetic experiments ("hardware cost increases linearly with
    the hardening level"). *)

val doubling_cost : base:float -> level:int -> float
(** [doubling_cost ~base ~level] = [base *. 2^(level-1)] — the cost
    model of the motivational examples (Fig. 1: 16/32/64). *)
