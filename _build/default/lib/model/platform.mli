(** The platform model: computation nodes with h-versions.

    Each node type [Nj] of the library comes in several versions
    [Njh] with hardening level [h = 1 .. levels].  A version carries its
    cost [Cjh] and, for every process [Pi] of the application, the
    worst-case execution time [tijh] and the single-execution failure
    probability [pijh] (Section 2).  The tables are per-application:
    WCETs come from worst-case analysis tools and failure probabilities
    from fault-injection experiments — in this reproduction, from
    {!Ftes_faultsim} or from the closed-form SER model of the
    generators. *)

type hversion = {
  level : int;  (** 1-based hardening level [h]. *)
  cost : float;  (** [Cjh], in abstract cost units. *)
  wcet_ms : float array;  (** [tijh] per process index [i]. *)
  pfail : float array;  (** [pijh] per process index [i]. *)
}

type node_type = {
  node_name : string;
  versions : hversion array;  (** index [h-1] holds level [h]. *)
}

val hversion :
  level:int -> cost:float -> wcet_ms:float array -> pfail:float array -> hversion
(** Checked constructor: positive finite WCETs, probabilities in
    [\[0,1)], equal table lengths, positive cost. *)

val node_type : name:string -> versions:hversion array -> node_type
(** Checked constructor: at least one version, levels are exactly
    [1, 2, ...] in order, all versions agree on the process count, and
    hardening is monotone — cost strictly increases with the level and
    every process's failure probability is non-increasing in the
    level. *)

val levels : node_type -> int
(** Number of available h-versions. *)

val n_processes : node_type -> int
(** Width of the WCET / failure tables. *)

val version : node_type -> level:int -> hversion
(** [version nt ~level] with a 1-based level; raises [Invalid_argument]
    when out of range. *)

val mean_wcet : node_type -> level:int -> float
(** Average WCET over all processes — the "speed" used to order
    architectures from fastest to slowest in {!Ftes_core.Design_strategy}. *)

val pp_node : Format.formatter -> node_type -> unit
