(** A hard real-time application (Section 2 / Section 4 inputs).

    Bundles the task graph with its timing and reliability parameters:
    the global deadline [D], the period [T] (one iteration of the
    application; the worked example of Appendix A.2 uses T = D), the
    reliability goal expressed as [gamma] (the maximum acceptable
    probability of a system failure within {!time_unit_ms}, i.e. one
    hour), and the recovery overhead [mu] charged before every
    re-execution. *)

type t = private {
  name : string;
  graph : Task_graph.t;
  process_names : string array;
  deadline_ms : float;
  period_ms : float;
  gamma : float; (* reliability goal is rho = 1 - gamma per hour *)
  recovery_overhead_ms : float; (* mu *)
}

val time_unit_ms : float
(** The reliability time unit tau: one hour, in milliseconds. *)

val make :
  ?name:string ->
  ?process_names:string array ->
  ?period_ms:float ->
  graph:Task_graph.t ->
  deadline_ms:float ->
  gamma:float ->
  recovery_overhead_ms:float ->
  unit ->
  t
(** Validates and builds an application.  [period_ms] defaults to
    [deadline_ms].  Raises [Invalid_argument] when the deadline or
    period is not positive, [gamma] is outside (0, 1), [mu] is negative,
    or [process_names] has the wrong length. *)

val n_processes : t -> int

val process_name : t -> int -> string

val iterations_per_hour : t -> float
(** tau / T of formula (6): how many application iterations fit in the
    one-hour reliability window (not rounded; the SFP check rounds the
    exponent up for pessimism). *)

val reliability_goal : t -> float
(** rho = 1 - gamma. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (name, size, deadline, goal). *)
