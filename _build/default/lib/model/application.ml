type t = {
  name : string;
  graph : Task_graph.t;
  process_names : string array;
  deadline_ms : float;
  period_ms : float;
  gamma : float;
  recovery_overhead_ms : float;
}

let time_unit_ms = 3600.0 *. 1000.0

let make ?(name = "app") ?process_names ?period_ms ~graph ~deadline_ms ~gamma
    ~recovery_overhead_ms () =
  let n = Task_graph.n graph in
  let process_names =
    match process_names with
    | Some names ->
        if Array.length names <> n then
          invalid_arg "Application.make: process_names length mismatch";
        names
    | None -> Array.init n (fun i -> Printf.sprintf "P%d" (i + 1))
  in
  let period_ms = Option.value ~default:deadline_ms period_ms in
  if not (Float.is_finite deadline_ms) || deadline_ms <= 0.0 then
    invalid_arg "Application.make: deadline must be positive";
  if not (Float.is_finite period_ms) || period_ms <= 0.0 then
    invalid_arg "Application.make: period must be positive";
  if not (Float.is_finite gamma) || gamma <= 0.0 || gamma >= 1.0 then
    invalid_arg "Application.make: gamma must lie in (0, 1)";
  if not (Float.is_finite recovery_overhead_ms) || recovery_overhead_ms < 0.0
  then invalid_arg "Application.make: recovery overhead must be non-negative";
  { name; graph; process_names; deadline_ms; period_ms; gamma;
    recovery_overhead_ms }

let n_processes t = Task_graph.n t.graph

let process_name t i = t.process_names.(i)

let iterations_per_hour t = time_unit_ms /. t.period_ms

let reliability_goal t = 1.0 -. t.gamma

let pp ppf t =
  Format.fprintf ppf
    "%s: %d processes, %d edges, D = %g ms, rho = 1 - %g/h, mu = %g ms"
    t.name (n_processes t)
    (Task_graph.n_edges t.graph)
    t.deadline_ms t.gamma t.recovery_overhead_ms
