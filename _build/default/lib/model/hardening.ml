let degradation ~hpd ~level ~levels =
  if levels < 1 then invalid_arg "Hardening.degradation: no levels";
  if level < 1 || level > levels then
    invalid_arg "Hardening.degradation: level out of range";
  if not (Float.is_finite hpd) || hpd < 0.0 then
    invalid_arg "Hardening.degradation: invalid HPD";
  if level = 1 then 0.01
  else if levels = 1 then 0.01
  else hpd *. float_of_int (level - 1) /. float_of_int (levels - 1)

let sfp_reduction ~factor ~level =
  if factor <= 0.0 then invalid_arg "Hardening.sfp_reduction: invalid factor";
  if level < 1 then invalid_arg "Hardening.sfp_reduction: level out of range";
  factor ** float_of_int (-(level - 1))

let linear_cost ~base ~level =
  if level < 1 then invalid_arg "Hardening.linear_cost: level out of range";
  base *. float_of_int level

let doubling_cost ~base ~level =
  if level < 1 then invalid_arg "Hardening.doubling_cost: level out of range";
  base *. (2.0 ** float_of_int (level - 1))
