(** A complete design-optimization problem instance (Section 4).

    Couples an {!Application.t} with the library of available node types
    and gives uniform access to the [tijh] / [pijh] / [Cjh] tables. *)

type t = private {
  app : Application.t;
  library : Platform.node_type array;
}

val make : app:Application.t -> library:Platform.node_type array -> t
(** Raises [Invalid_argument] when the library is empty or a node's
    tables don't cover every process of the application. *)

val n_processes : t -> int

val n_library : t -> int
(** Number of node types available for architecture selection. *)

val node : t -> int -> Platform.node_type
(** [node t j] with a 0-based library index. *)

val levels : t -> int -> int
(** Number of h-versions of library node [j]. *)

val wcet : t -> node:int -> level:int -> proc:int -> float
(** [tijh]: WCET of process [proc] on the [level]-version of library
    node [node]. *)

val pfail : t -> node:int -> level:int -> proc:int -> float
(** [pijh]: single-execution failure probability. *)

val cost : t -> node:int -> level:int -> float
(** [Cjh]. *)

val min_cost : t -> node:int -> float
(** Cost of the cheapest (minimum-hardening) version. *)

val graph : t -> Task_graph.t

val pp : Format.formatter -> t -> unit
