type hversion = {
  level : int;
  cost : float;
  wcet_ms : float array;
  pfail : float array;
}

type node_type = { node_name : string; versions : hversion array }

let hversion ~level ~cost ~wcet_ms ~pfail =
  if level < 1 then invalid_arg "Platform.hversion: level must be >= 1";
  if not (Float.is_finite cost) || cost <= 0.0 then
    invalid_arg "Platform.hversion: cost must be positive";
  if Array.length wcet_ms <> Array.length pfail then
    invalid_arg "Platform.hversion: wcet/pfail table size mismatch";
  Array.iter
    (fun t ->
      if not (Float.is_finite t) || t <= 0.0 then
        invalid_arg "Platform.hversion: WCET must be positive")
    wcet_ms;
  Array.iter
    (fun p ->
      if not (Float.is_finite p) || p < 0.0 || p >= 1.0 then
        invalid_arg "Platform.hversion: failure probability must be in [0,1)")
    pfail;
  { level; cost; wcet_ms; pfail }

let node_type ~name ~versions =
  if Array.length versions = 0 then
    invalid_arg "Platform.node_type: node needs at least one h-version";
  let width = Array.length versions.(0).wcet_ms in
  Array.iteri
    (fun i v ->
      if v.level <> i + 1 then
        invalid_arg "Platform.node_type: levels must be consecutive from 1";
      if Array.length v.wcet_ms <> width then
        invalid_arg "Platform.node_type: inconsistent process counts")
    versions;
  for i = 1 to Array.length versions - 1 do
    let lower = versions.(i - 1) and higher = versions.(i) in
    if higher.cost <= lower.cost then
      invalid_arg "Platform.node_type: cost must increase with hardening";
    for p = 0 to width - 1 do
      if higher.pfail.(p) > lower.pfail.(p) then
        invalid_arg
          "Platform.node_type: failure probability must not increase with \
           hardening"
    done
  done;
  { node_name = name; versions }

let levels nt = Array.length nt.versions

let n_processes nt = Array.length nt.versions.(0).wcet_ms

let version nt ~level =
  if level < 1 || level > levels nt then
    invalid_arg "Platform.version: level out of range";
  nt.versions.(level - 1)

let mean_wcet nt ~level =
  let v = version nt ~level in
  let n = Array.length v.wcet_ms in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 v.wcet_ms /. float_of_int n

let pp_node ppf nt =
  Format.fprintf ppf "%s (%d h-versions, costs" nt.node_name (levels nt);
  Array.iter (fun v -> Format.fprintf ppf " %g" v.cost) nt.versions;
  Format.fprintf ppf ")"
