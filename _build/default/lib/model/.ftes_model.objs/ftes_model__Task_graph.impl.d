lib/model/task_graph.ml: Array Buffer Float Fun Hashtbl Int List Option Printf Set
