lib/model/application.ml: Array Float Format Option Printf Task_graph
