lib/model/hardening.ml: Float
