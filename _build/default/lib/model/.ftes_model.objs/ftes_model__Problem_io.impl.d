lib/model/problem_io.ml: Application Array Ftes_util Fun List Platform Problem Result Task_graph
