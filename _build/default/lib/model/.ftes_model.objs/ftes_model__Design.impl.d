lib/model/design.ml: Array Format List Platform Problem String
