lib/model/problem.ml: Application Array Format Platform
