lib/model/problem.mli: Application Format Platform Task_graph
