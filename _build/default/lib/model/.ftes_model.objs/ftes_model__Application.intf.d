lib/model/application.mli: Format Task_graph
