lib/model/hardening.mli:
