lib/model/problem_io.mli: Ftes_util Problem
