lib/model/platform.ml: Array Float Format
