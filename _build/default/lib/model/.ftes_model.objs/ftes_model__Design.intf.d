lib/model/design.mli: Format Problem
