lib/model/task_graph.mli:
