lib/model/platform.mli: Format
