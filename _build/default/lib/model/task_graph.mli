(** Directed acyclic task graphs (the application model of Section 2).

    Processes are numbered [0 .. n-1].  An edge [e] from [src] to [dst]
    means the output of [src] is an input of [dst]; when the two
    endpoints are mapped on different computation nodes the edge becomes
    a message on the bus with worst-case transmission time
    [e.transmission_ms].  A process starts only after all its inputs
    have arrived and is never preempted.

    An application may consist of several graphs [G_k]; they are
    represented here as the connected components of a single graph
    value. *)

type edge = { src : int; dst : int; transmission_ms : float }

type t

val make : n:int -> edge list -> t
(** [make ~n edges] validates and freezes a graph with [n] processes.
    Raises [Invalid_argument] if an endpoint is out of range, an edge is
    a self-loop, a pair of processes is connected twice, a transmission
    time is negative or not finite, or the graph has a cycle. *)

val n : t -> int
(** Number of processes. *)

val edges : t -> edge list
(** All edges, in insertion order. *)

val n_edges : t -> int

val succs : t -> int -> edge list
(** Outgoing edges of a process. *)

val preds : t -> int -> edge list
(** Incoming edges of a process. *)

val in_degree : t -> int -> int
val out_degree : t -> int -> int

val sources : t -> int list
(** Processes with no predecessors, ascending. *)

val sinks : t -> int list
(** Processes with no successors, ascending. *)

val topological_order : t -> int array
(** A fixed topological order (Kahn, smallest-index-first, hence
    deterministic). *)

val longest_path :
  t -> exec:(int -> float) -> comm:(edge -> float) -> float
(** Length of the longest (critical) path where process [i] contributes
    [exec i] and edge [e] contributes [comm e]. *)

val critical_path :
  t -> exec:(int -> float) -> comm:(edge -> float) -> int list
(** The processes of one longest path, in execution order. *)

val bottom_levels :
  t -> exec:(int -> float) -> comm:(edge -> float) -> float array
(** [bottom_levels t ~exec ~comm].(i) is the longest path length from
    the start of process [i] to the end of the graph — the classic list
    scheduling priority. *)

val components : t -> int list list
(** Weakly-connected components (the [G_k] of the application set). *)

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** GraphViz rendering, for documentation and debugging. *)
