type t = { app : Application.t; library : Platform.node_type array }

let make ~app ~library =
  if Array.length library = 0 then
    invalid_arg "Problem.make: empty node library";
  let n = Application.n_processes app in
  Array.iter
    (fun nt ->
      if Platform.n_processes nt <> n then
        invalid_arg "Problem.make: node tables do not match the application")
    library;
  { app; library }

let n_processes t = Application.n_processes t.app

let n_library t = Array.length t.library

let node t j =
  if j < 0 || j >= Array.length t.library then
    invalid_arg "Problem.node: library index out of range";
  t.library.(j)

let levels t j = Platform.levels (node t j)

let wcet t ~node:j ~level ~proc =
  (Platform.version (node t j) ~level).wcet_ms.(proc)

let pfail t ~node:j ~level ~proc =
  (Platform.version (node t j) ~level).pfail.(proc)

let cost t ~node:j ~level = (Platform.version (node t j) ~level).cost

let min_cost t ~node:j = cost t ~node:j ~level:1

let graph t = t.app.Application.graph

let pp ppf t =
  Format.fprintf ppf "%a on a library of %d node types" Application.pp t.app
    (n_library t)
