(** Exact worst-case analysis by exhaustive fault-scenario replay.

    The paper's shared-slack schedule length (Section 6.4) and our sound
    conservative bound both {e estimate} the worst completion time over
    the fault scenarios the re-execution budgets admit.  This module
    computes that worst case {e exactly}: it enumerates every fault
    vector in which node [Nj] suffers at most [kj] faults (a product of
    per-node multisets, the very combinatorics of Appendix A) and
    replays each deterministically with {!Executor.run_scenario}.

    Enumeration is exponential in the budgets; the [limit] guard keeps
    it to the small instances where this is meant to be used (unit
    tests, the bench ablation, and spot checks of real designs). *)

val count_scenarios : Ftes_model.Design.t -> float
(** Number of admissible fault vectors: the product over nodes of
    [sum_(f <= kj) C(n_j + f - 1, f)]. *)

type result = {
  exact_worst_ms : float;
      (** latest completion over every admissible scenario. *)
  worst_faults : int array;  (** a scenario attaining it. *)
  scenarios : int;  (** number of scenarios replayed. *)
  shared_bound_ms : float;  (** the paper's SL for comparison. *)
  conservative_bound_ms : float;  (** our sound bound. *)
}

val worst_case :
  ?bus:Ftes_sched.Bus.policy ->
  ?limit:int ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  result
(** Raises [Invalid_argument] when {!count_scenarios} exceeds [limit]
    (default 200_000). *)

val optimism_certificate : result -> bool
(** [true] when the paper's shared bound is exceeded by some admissible
    scenario, i.e. the exact worst case certifies the bound's
    optimism. *)
