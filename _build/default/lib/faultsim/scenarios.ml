module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Scheduler = Ftes_sched.Scheduler
module Symmetric = Ftes_util.Symmetric

let count_scenarios (design : Design.t) =
  let members = Design.n_members design in
  let total = ref 1.0 in
  for member = 0 to members - 1 do
    let n = List.length (Design.procs_on design ~member) in
    let k = design.Design.reexecs.(member) in
    let node_scenarios = ref 0.0 in
    for f = 0 to k do
      node_scenarios :=
        !node_scenarios +. float_of_int (Symmetric.count_multisets ~n ~f)
    done;
    total := !total *. Float.max 1.0 !node_scenarios
  done;
  !total

type result = {
  exact_worst_ms : float;
  worst_faults : int array;
  scenarios : int;
  shared_bound_ms : float;
  conservative_bound_ms : float;
}

(* Enumerate per-node fault multisets and take the cartesian product
   across nodes, folding [visit] over the global fault vectors. *)
let iter_fault_vectors (design : Design.t) ~n_processes visit =
  let members = Design.n_members design in
  let faults = Array.make n_processes 0 in
  let rec per_node member =
    if member = members then visit faults
    else begin
      let procs = Array.of_list (Design.procs_on design ~member) in
      let k = design.Design.reexecs.(member) in
      let n = Array.length procs in
      if n = 0 then per_node (member + 1)
      else
        for f = 0 to k do
          Symmetric.fold_multisets ~n ~f ~init:() (fun () m ->
              Array.iteri (fun i times -> faults.(procs.(i)) <- times) m;
              per_node (member + 1));
          Array.iter (fun p -> faults.(p) <- 0) procs
        done
    end
  in
  per_node 0

let worst_case ?bus ?(limit = 200_000) problem design =
  let space = count_scenarios design in
  if space > float_of_int limit then
    invalid_arg
      (Printf.sprintf "Scenarios.worst_case: %.3g scenarios exceed the limit %d"
         space limit);
  let schedule = Scheduler.schedule ?bus problem design in
  let n = Problem.n_processes problem in
  let exact = ref neg_infinity in
  let worst = ref (Array.make n 0) in
  let scenarios = ref 0 in
  iter_fault_vectors design ~n_processes:n (fun faults ->
      incr scenarios;
      let o = Executor.run_scenario ?bus problem design schedule ~faults in
      (* Budgets cover every enumerated scenario by construction. *)
      assert (o.Executor.failed_node = None);
      if o.Executor.makespan > !exact then begin
        exact := o.Executor.makespan;
        worst := Array.copy faults
      end);
  { exact_worst_ms = !exact;
    worst_faults = !worst;
    scenarios = !scenarios;
    shared_bound_ms =
      Scheduler.schedule_length ~slack:Scheduler.Shared ?bus problem design;
    conservative_bound_ms =
      Scheduler.schedule_length ~slack:Scheduler.Conservative ?bus problem
        design }

let optimism_certificate r = r.exact_worst_ms > r.shared_bound_ms +. 1e-9
