type t = { ser_per_cycle : float; clock_hz : float; masking : float }

let default_clock_hz = 100e6

let make ?(clock_hz = default_clock_hz) ~ser_per_cycle ~masking () =
  if not (Float.is_finite ser_per_cycle) || ser_per_cycle < 0.0 then
    invalid_arg "Fault_model.make: negative SER";
  if not (Float.is_finite clock_hz) || clock_hz <= 0.0 then
    invalid_arg "Fault_model.make: clock must be positive";
  if not (Float.is_finite masking) || masking < 0.0 || masking > 1.0 then
    invalid_arg "Fault_model.make: masking must lie in [0, 1]";
  { ser_per_cycle; clock_hz; masking }

let of_hardening ?clock_hz ?(reduction_factor = 100.0) ~ser_per_cycle ~level ()
    =
  if level < 1 then invalid_arg "Fault_model.of_hardening: level out of range";
  if reduction_factor < 1.0 then
    invalid_arg "Fault_model.of_hardening: reduction factor must be >= 1";
  let masking = 1.0 -. (reduction_factor ** float_of_int (-(level - 1))) in
  make ?clock_hz ~ser_per_cycle ~masking ()

let effective_rate_per_ms t =
  t.ser_per_cycle *. t.clock_hz /. 1000.0 *. (1.0 -. t.masking)

let failure_probability t ~duration_ms =
  if duration_ms < 0.0 then
    invalid_arg "Fault_model.failure_probability: negative duration";
  -.Float.expm1 (-.(effective_rate_per_ms t *. duration_ms))
