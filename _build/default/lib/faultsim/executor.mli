(** Discrete-event execution of a root schedule under injected faults.

    One run simulates one iteration of the application: processes
    execute in their static per-node order, every failed execution is
    re-executed after the recovery overhead [mu] while the node's shared
    budget of [kj] re-executions lasts, and inter-node messages keep
    their static bus order but shift to the producers' actual
    (fault-delayed) finish times — the behaviour of the contingency
    branches of a conditional schedule.

    The simulator is the empirical counterpart of the SFP analysis: over
    many runs the fraction of budget-exceeded iterations converges to
    formula (5).  It also quantifies the optimism of the paper's
    shared-slack schedule bound: under the {!Ftes_sched.Scheduler.Shared}
    model a cross-node fault cascade can finish after [SL] (rarely, and
    never under [Conservative] schedules) — the deadline-miss counter
    measures exactly this. *)

type outcome = {
  makespan : float;
      (** completion time of the last process (meaningful also for
          failed runs: time until the budget was exhausted). *)
  failed_node : int option;
      (** [Some slot] when that node ran out of re-executions while a
          process still had not executed correctly. *)
  faults_injected : int;  (** total failed executions across all nodes. *)
}

val run_iteration :
  ?boost:float ->
  ?bus:Ftes_sched.Bus.policy ->
  Ftes_util.Prng.t ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  Ftes_sched.Schedule.t ->
  outcome
(** Simulate one iteration.  [boost] scales every process failure
    probability (importance sampling for the rare-event regime; default
    1).  Raises [Invalid_argument] if boosting pushes a probability to
    1 or beyond. *)

val run_scenario :
  ?bus:Ftes_sched.Bus.policy ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  Ftes_sched.Schedule.t ->
  faults:int array ->
  outcome
(** Deterministic replay of one fault scenario: process [p] fails
    exactly [faults.(p)] times (then succeeds), budgets permitting.
    This is the building block of the exact worst-case analysis in
    {!Scenarios}.  Raises [Invalid_argument] on a fault vector of the
    wrong length or with negative entries. *)

type campaign = {
  trials : int;
  system_failures : int;
  deadline_misses : int;
      (** runs that survived within the re-execution budgets but still
          finished after the deadline: the optimism of the shared-slack
          bound (0 under the conservative policy). *)
  observed_failure_rate : float;
  predicted_failure_rate : float;
      (** formula (5) evaluated on the (boosted) probabilities. *)
  max_makespan : float;
}

val run_campaign :
  ?boost:float ->
  ?slack:Ftes_sched.Scheduler.slack_mode ->
  ?bus:Ftes_sched.Bus.policy ->
  Ftes_util.Prng.t ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  trials:int ->
  campaign
(** Monte-Carlo validation campaign for a design (its schedule is built
    internally; default slack policy [Shared]). *)
