(** Transient-fault model (the substitute for the paper's fault-injection
    tools [1, 18]).

    Transient faults strike a running process as a Poisson process whose
    rate is the soft error rate (SER) per clock cycle times the clock
    frequency; a hardened node masks a fraction of the strikes.  The
    closed form of the resulting single-execution failure probability is

    [p = 1 - exp (-rate * (1 - masking) * t)]

    which for the tiny rates of interest is [rate * (1-masking) * t].
    {!Injector} estimates the same quantity by Monte-Carlo injection;
    the generators use {!failure_probability} directly. *)

type t = {
  ser_per_cycle : float;  (** raw soft error rate per clock cycle. *)
  clock_hz : float;  (** processor clock, cycles per second. *)
  masking : float;  (** fraction of strikes masked by hardening, in [0,1). *)
}

val make : ?clock_hz:float -> ser_per_cycle:float -> masking:float -> unit -> t
(** Default clock: 100 MHz.  Raises [Invalid_argument] on a negative
    SER, a non-positive clock or a masking outside [\[0, 1\]]. *)

val default_clock_hz : float

val of_hardening :
  ?clock_hz:float ->
  ?reduction_factor:float ->
  ser_per_cycle:float ->
  level:int ->
  unit ->
  t
(** Fault model of h-version [level]: hardening divides the effective
    rate by [reduction_factor^(level-1)] (default factor 100, the
    two-orders-of-magnitude steps of the paper's examples), expressed
    here as a masking fraction. *)

val effective_rate_per_ms : t -> float
(** Unmasked strikes per millisecond of execution. *)

val failure_probability : t -> duration_ms:float -> float
(** Closed-form single-execution failure probability of a process with
    the given WCET. *)
