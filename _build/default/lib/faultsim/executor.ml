module Prng = Ftes_util.Prng
module Task_graph = Ftes_model.Task_graph
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Schedule = Ftes_sched.Schedule
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp

type outcome = {
  makespan : float;
  failed_node : int option;
  faults_injected : int;
}

let boosted_pfail ?(boost = 1.0) problem design ~proc =
  if boost < 1.0 then invalid_arg "Executor: boost must be >= 1";
  let p = Design.pfail problem design ~proc *. boost in
  if p >= 1.0 then
    invalid_arg "Executor: boosted probability reaches 1; lower the boost";
  p

(* Core timeline simulation.  [decide ~proc] is called once per
   execution attempt and returns whether that attempt fails; the random
   campaign draws Bernoulli variables, the deterministic scenario runner
   counts down a prescribed fault vector. *)
let simulate ~bus ~decide problem design (schedule : Schedule.t) =
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  let members = Design.n_members design in
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let budget = Array.copy design.Design.reexecs in
  let node_avail = Array.make members 0.0 in
  let actual_finish = Array.make n 0.0 in
  let faults = ref 0 in
  let failed_node = ref None in
  let makespan = ref 0.0 in
  (* Static per-node execution order = ascending start times. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      compare
        (schedule.Schedule.entries.(a).Schedule.start, a)
        (schedule.Schedule.entries.(b).Schedule.start, b))
    order;
  (* The bus keeps its static arbitration policy, but transmissions
     shift to the producers' actual (fault-delayed) finish times,
     exactly as in a conditional schedule's contingency branches. *)
  let bus_state = Ftes_sched.Bus.create bus ~members in
  let message_actual_finish = Hashtbl.create 16 in
  let dispatch_outputs proc =
    List.iter
      (fun (m : Schedule.message) ->
        if m.Schedule.edge.Task_graph.src = proc then begin
          let _, finish =
            Ftes_sched.Bus.transmit bus_state
              ~member:design.Design.mapping.(proc)
              ~ready:actual_finish.(proc)
              ~duration:m.Schedule.edge.Task_graph.transmission_ms
          in
          Hashtbl.replace message_actual_finish
            (m.Schedule.edge.Task_graph.src, m.Schedule.edge.Task_graph.dst)
            finish
        end)
      schedule.Schedule.messages
  in
  let message_arrival proc =
    List.fold_left
      (fun acc (e : Task_graph.edge) ->
        let src_slot = design.Design.mapping.(e.src) in
        let dst_slot = design.Design.mapping.(proc) in
        if src_slot = dst_slot then Float.max acc actual_finish.(e.src)
        else
          Float.max acc
            (Hashtbl.find message_actual_finish (e.src, e.dst)))
      0.0 (Task_graph.preds graph proc)
  in
  let exception Exhausted of int in
  (try
     Array.iter
       (fun proc ->
         let entry = schedule.Schedule.entries.(proc) in
         let slot = entry.Schedule.slot in
         let t = Design.wcet problem design ~proc in
         let start =
           Float.max entry.Schedule.start
             (Float.max node_avail.(slot) (message_arrival proc))
         in
         (* Execute; on failure re-execute after [mu] while the node's
            budget lasts. *)
         let rec attempt finish =
           if decide ~proc then begin
             incr faults;
             if budget.(slot) = 0 then begin
               makespan := Float.max !makespan finish;
               raise (Exhausted slot)
             end
             else begin
               budget.(slot) <- budget.(slot) - 1;
               attempt (finish +. mu +. t)
             end
           end
           else finish
         in
         let finish = attempt (start +. t) in
         actual_finish.(proc) <- finish;
         node_avail.(slot) <- finish;
         dispatch_outputs proc;
         makespan := Float.max !makespan finish)
       order
   with Exhausted slot -> failed_node := Some slot);
  { makespan = !makespan; failed_node = !failed_node;
    faults_injected = !faults }

let run_iteration ?boost ?(bus = Ftes_sched.Bus.Fcfs) prng problem design
    schedule =
  let decide ~proc =
    Prng.chance prng (boosted_pfail ?boost problem design ~proc)
  in
  simulate ~bus ~decide problem design schedule

let run_scenario ?(bus = Ftes_sched.Bus.Fcfs) problem design schedule ~faults =
  let n = Problem.n_processes problem in
  if Array.length faults <> n then
    invalid_arg "Executor.run_scenario: fault vector length mismatch";
  Array.iter
    (fun f ->
      if f < 0 then invalid_arg "Executor.run_scenario: negative fault count")
    faults;
  let remaining = Array.copy faults in
  let decide ~proc =
    if remaining.(proc) > 0 then begin
      remaining.(proc) <- remaining.(proc) - 1;
      true
    end
    else false
  in
  simulate ~bus ~decide problem design schedule

type campaign = {
  trials : int;
  system_failures : int;
  deadline_misses : int;
  observed_failure_rate : float;
  predicted_failure_rate : float;
  max_makespan : float;
}

let run_campaign ?(boost = 1.0) ?slack ?bus prng problem design ~trials =
  if trials <= 0 then invalid_arg "Executor.run_campaign: trials must be > 0";
  let schedule = Scheduler.schedule ?slack ?bus problem design in
  let deadline = problem.Problem.app.Ftes_model.Application.deadline_ms in
  let failures = ref 0 in
  let misses = ref 0 in
  let max_makespan = ref 0.0 in
  for _ = 1 to trials do
    let o = run_iteration ~boost ?bus prng problem design schedule in
    (match o.failed_node with
    | Some _ -> incr failures
    | None ->
        if o.makespan > deadline +. 1e-9 then incr misses;
        if o.makespan > !max_makespan then max_makespan := o.makespan)
  done;
  let predicted_failure_rate =
    let analyses =
      Array.init (Design.n_members design) (fun member ->
          let probs =
            Design.pfail_vector problem design ~member
            |> Array.map (fun p -> p *. boost)
          in
          Sfp.node_analysis
            ~kmax:(max Sfp.default_kmax design.Design.reexecs.(member))
            probs)
    in
    Sfp.system_failure_per_iteration analyses ~k:design.Design.reexecs
  in
  { trials;
    system_failures = !failures;
    deadline_misses = !misses;
    observed_failure_rate = float_of_int !failures /. float_of_int trials;
    predicted_failure_rate;
    max_makespan = !max_makespan }
