lib/faultsim/executor.mli: Ftes_model Ftes_sched Ftes_util
