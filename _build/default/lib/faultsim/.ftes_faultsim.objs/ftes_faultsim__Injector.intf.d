lib/faultsim/injector.mli: Fault_model Ftes_util
