lib/faultsim/scenarios.ml: Array Executor Float Ftes_model Ftes_sched Ftes_util List Printf
