lib/faultsim/fault_model.ml: Float
