lib/faultsim/fault_model.mli:
