lib/faultsim/injector.ml: Fault_model Ftes_util
