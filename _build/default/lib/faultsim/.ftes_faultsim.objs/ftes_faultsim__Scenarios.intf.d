lib/faultsim/scenarios.mli: Ftes_model Ftes_sched
