lib/faultsim/executor.ml: Array Float Ftes_model Ftes_sched Ftes_sfp Ftes_util Fun Hashtbl List
