(** Monte-Carlo fault injection (GOOFI-style campaign, our substitute
    for the tools of [1, 18]).

    A campaign repeatedly "executes" a process under the Poisson strike
    model of {!Fault_model} and records whether any unmasked strike hit
    the execution window.  The resulting estimate of the process failure
    probability converges to {!Fault_model.failure_probability}; the
    test-suite asserts agreement within the Wilson confidence bounds. *)

type estimate = {
  trials : int;
  failures : int;
  p_hat : float;  (** point estimate, failures / trials. *)
  ci_low : float;
  ci_high : float;  (** 95% Wilson interval. *)
}

val run_once : Ftes_util.Prng.t -> Fault_model.t -> duration_ms:float -> bool
(** One injected execution: [true] when the execution fails.  Strikes
    are drawn as exponential inter-arrival times; each strike is masked
    with the model's masking probability. *)

val estimate_pfail :
  Ftes_util.Prng.t ->
  Fault_model.t ->
  duration_ms:float ->
  trials:int ->
  estimate
(** A full campaign.  Raises [Invalid_argument] if [trials <= 0]. *)

val importance_boost : Fault_model.t -> target_p:float -> Fault_model.t * float
(** Fault rates of interest (1e-10 per cycle) are far too rare to hit by
    naive sampling.  [importance_boost model ~target_p] returns a model
    whose rate is scaled so a single execution fails with probability
    roughly [target_p], together with the scale factor applied; the
    caller divides the estimated probability by the factor to recover
    the unboosted estimate (valid in the linear, rare-event regime). *)
