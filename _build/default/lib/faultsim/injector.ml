module Prng = Ftes_util.Prng
module Stats = Ftes_util.Stats

type estimate = {
  trials : int;
  failures : int;
  p_hat : float;
  ci_low : float;
  ci_high : float;
}

let run_once prng (model : Fault_model.t) ~duration_ms =
  let raw_rate = model.ser_per_cycle *. model.clock_hz /. 1000.0 in
  if raw_rate <= 0.0 then false
  else begin
    (* Walk the strike arrivals across the execution window; any strike
       that survives masking corrupts the execution. *)
    let rec walk t =
      let t = t +. Prng.exponential prng raw_rate in
      if t > duration_ms then false
      else if not (Prng.chance prng model.masking) then true
      else walk t
    in
    walk 0.0
  end

let estimate_pfail prng model ~duration_ms ~trials =
  if trials <= 0 then invalid_arg "Injector.estimate_pfail: trials must be > 0";
  let failures = ref 0 in
  for _ = 1 to trials do
    if run_once prng model ~duration_ms then incr failures
  done;
  let p_hat = float_of_int !failures /. float_of_int trials in
  let ci_low, ci_high =
    Stats.binomial_confidence ~successes:!failures ~trials
  in
  { trials; failures = !failures; p_hat; ci_low; ci_high }

let importance_boost (model : Fault_model.t) ~target_p =
  if target_p <= 0.0 || target_p >= 1.0 then
    invalid_arg "Injector.importance_boost: target must lie in (0, 1)";
  let effective = Fault_model.effective_rate_per_ms model in
  if effective <= 0.0 then (model, 1.0)
  else begin
    (* Choose the factor against a 1 ms execution; the caller's actual
       durations stay in the linear regime as long as target_p is small. *)
    let factor = target_p /. effective in
    let boosted =
      Fault_model.make ~clock_hz:model.clock_hz
        ~ser_per_cycle:(model.ser_per_cycle *. factor)
        ~masking:model.masking ()
    in
    (boosted, factor)
  end
