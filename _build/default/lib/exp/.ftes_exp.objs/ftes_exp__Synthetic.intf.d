lib/exp/synthetic.mli: Ftes_core Ftes_gen
