lib/exp/ablations.ml: Array Float Ftes_core Ftes_faultsim Ftes_gen Ftes_model Ftes_sched Ftes_sfp Ftes_util Fun List Option Printf Sys
