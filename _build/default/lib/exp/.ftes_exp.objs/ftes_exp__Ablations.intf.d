lib/exp/ablations.mli:
