lib/exp/figures.mli: Ftes_core Synthetic
