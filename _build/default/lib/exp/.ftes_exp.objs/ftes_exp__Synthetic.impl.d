lib/exp/synthetic.ml: Array Ftes_core Ftes_gen Hashtbl List Option Sys
