lib/exp/figures.ml: Ftes_cc Ftes_core Ftes_util List Printf Synthetic
