(** One runner per table / figure of the paper's evaluation (Fig. 6 and
    the cruise-controller study), each producing both our measured
    series and the paper's reference values so reports are
    side-by-side.

    Paper references for Fig. 6b come from its printed table; those for
    Fig. 6a are its ArC = 20 rows; Fig. 6c / 6d references are read off
    the bar charts and marked approximate. *)

(** A reproduced chart/table: percentages of accepted applications per
    x-position (HPD or SER) and per strategy. *)
type artifact = {
  id : string;  (** "fig6a" ... "fig6d". *)
  title : string;
  x_labels : string list;
  ours : (string * float list) list;  (** strategy -> series. *)
  paper : (string * float list) list;
  note : string;
}

val hpd_values : float list
(** [0.05; 0.25; 0.50; 1.00]. *)

val ser_values : float list
(** [1e-12; 1e-11; 1e-10]. *)

val fig6a : Synthetic.suite -> artifact
(** Acceptance vs HPD at SER = 1e-11, ArC = 20. *)

val fig6b : Synthetic.suite -> artifact list
(** The full table: one artifact per ArC in {15, 20, 25}, acceptance vs
    HPD at SER = 1e-11. *)

val fig6c : Synthetic.suite -> artifact
(** Acceptance vs SER at HPD = 5%, ArC = 20. *)

val fig6d : Synthetic.suite -> artifact
(** Acceptance vs SER at HPD = 100%, ArC = 20. *)

val render : artifact -> string
(** Text table (ours vs paper) followed by an ASCII bar chart of our
    series. *)

val to_csv : artifact -> string list list

(** The cruise-controller case study. *)
type cc_result = {
  rows : (string * bool * float option * float option) list;
      (** strategy, feasible, cost, schedule length. *)
  opt_saving_vs_max : float option;
      (** (C_MAX - C_OPT) / C_MAX, when both are feasible. *)
}

val cc_study : ?config:Ftes_core.Config.t -> unit -> cc_result

val render_cc : cc_result -> string
