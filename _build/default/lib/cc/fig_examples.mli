(** The paper's motivational examples, with their exact tables.

    {!fig1_problem} is the four-process application of Fig. 1 (deadline
    360 ms, rho = 1 - 1e-5 per hour, mu = 15 ms) with nodes N1 and N2 in
    three h-versions each; {!fig3_problem} is the single-process example
    of Fig. 3 (mu = 20 ms).  The [fig4_*] designs are the five
    architecture alternatives of Fig. 4; the test-suite asserts the
    paper's verdicts on them (4a schedulable at cost 72, 4b/4c/4d
    unschedulable, 4e schedulable at cost 80). *)

val fig1_problem : unit -> Ftes_model.Problem.t
(** Application of Fig. 1: P1 -> {P2, P3} -> P4 (a diamond), on a
    library [N1; N2].  Message transmission times are not printed in the
    paper; 10 ms reproduces its Gantt charts. *)

val fig3_problem : unit -> Ftes_model.Problem.t
(** One process P1 on one node N1 with h-versions
    (t, p, C) = (80 ms, 4e-2, 10), (100 ms, 4e-4, 20),
    (160 ms, 4e-6, 40). *)

(** The five alternatives of Fig. 4.  Each takes the problem returned by
    {!fig1_problem}.  Hardening levels and mappings are the figure's;
    re-execution counts are the ones derived by the SFP analysis (k = 1
    on each node in 4a, k = 2 in 4b/4c, k = 0 in 4d/4e). *)

val fig4a : Ftes_model.Problem.t -> Ftes_model.Design.t
(** N1 h2 {P1, P2} + N2 h2 {P3, P4}, cost 72. *)

val fig4b : Ftes_model.Problem.t -> Ftes_model.Design.t
(** N1 h2 alone, cost 32. *)

val fig4c : Ftes_model.Problem.t -> Ftes_model.Design.t
(** N2 h2 alone, cost 40. *)

val fig4d : Ftes_model.Problem.t -> Ftes_model.Design.t
(** N1 h3 alone, cost 64. *)

val fig4e : Ftes_model.Problem.t -> Ftes_model.Design.t
(** N2 h3 alone, cost 80. *)
