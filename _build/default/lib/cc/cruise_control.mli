(** The real-life case study of Section 7: a vehicle cruise controller
    (CC) of 32 processes on three computation nodes — the Electronic
    Throttle Module (ETM), the Anti-lock Braking System (ABS) and the
    Transmission Control Module (TCM).

    Parameters from the paper: deadline 300 ms, reliability goal
    rho = 1 - 1.2e-5 per hour, SER of the least hardened versions
    2e-12 per cycle, five h-versions, HPD = 25%, linear cost functions,
    recovery overhead within 1-10% of the average execution time.

    The process set is not published; we model the CC as four
    functional clusters (throttle control on the ETM, wheel-speed
    sensing and braking on the ABS, gear management on the TCM, and the
    cruise control law proper, which can run anywhere) with WCETs sized
    so that the paper's qualitative result is reproduced: the
    application is {e unschedulable} under MIN, schedulable under both
    MAX and OPT, and OPT is far cheaper than MAX. *)

val n_processes : int
(** 32. *)

val node_names : string array
(** [\[| "ETM"; "ABS"; "TCM" |\]]. *)

val process_names : string array

val problem :
  ?deadline_ms:float ->
  ?gamma:float ->
  ?ser_per_cycle:float ->
  ?hpd:float ->
  unit ->
  Ftes_model.Problem.t
(** The full problem instance (defaults: the paper's parameters).
    Cluster processes run 1.5x slower away from their home module; the
    cruise-law processes are equally fast everywhere. *)

val graph : unit -> Ftes_model.Task_graph.t
(** Just the process graph (for documentation / DOT export). *)
