module Task_graph = Ftes_model.Task_graph
module Application = Ftes_model.Application
module Platform = Ftes_model.Platform
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design

let transmission_ms = 10.0

let fig1_graph () =
  Task_graph.make ~n:4
    [ { Task_graph.src = 0; dst = 1; transmission_ms } (* m1: P1 -> P2 *);
      { Task_graph.src = 0; dst = 2; transmission_ms } (* m2: P1 -> P3 *);
      { Task_graph.src = 1; dst = 3; transmission_ms } (* m3: P2 -> P4 *);
      { Task_graph.src = 2; dst = 3; transmission_ms } (* m4: P3 -> P4 *) ]

let fig1_problem () =
  let app =
    Application.make ~name:"fig1" ~graph:(fig1_graph ()) ~deadline_ms:360.0
      ~gamma:1e-5 ~recovery_overhead_ms:15.0 ()
  in
  (* Fig. 1 tables: per h-version, WCET (ms) and failure probability of
     P1..P4, with the doubling costs printed in the figure. *)
  let n1 =
    Platform.node_type ~name:"N1"
      ~versions:
        [| Platform.hversion ~level:1 ~cost:16.0
             ~wcet_ms:[| 60.0; 75.0; 60.0; 75.0 |]
             ~pfail:[| 1.2e-3; 1.3e-3; 1.4e-3; 1.6e-3 |];
           Platform.hversion ~level:2 ~cost:32.0
             ~wcet_ms:[| 75.0; 90.0; 75.0; 90.0 |]
             ~pfail:[| 1.2e-5; 1.3e-5; 1.4e-5; 1.6e-5 |];
           Platform.hversion ~level:3 ~cost:64.0
             ~wcet_ms:[| 90.0; 105.0; 90.0; 105.0 |]
             ~pfail:[| 1.2e-10; 1.3e-10; 1.4e-10; 1.6e-10 |] |]
  in
  let n2 =
    Platform.node_type ~name:"N2"
      ~versions:
        [| Platform.hversion ~level:1 ~cost:20.0
             ~wcet_ms:[| 50.0; 65.0; 50.0; 65.0 |]
             ~pfail:[| 1e-3; 1.2e-3; 1.2e-3; 1.3e-3 |];
           Platform.hversion ~level:2 ~cost:40.0
             ~wcet_ms:[| 60.0; 75.0; 60.0; 75.0 |]
             ~pfail:[| 1e-5; 1.2e-5; 1.2e-5; 1.3e-5 |];
           Platform.hversion ~level:3 ~cost:80.0
             ~wcet_ms:[| 75.0; 90.0; 75.0; 90.0 |]
             ~pfail:[| 1e-10; 1.2e-10; 1.2e-10; 1.3e-10 |] |]
  in
  Problem.make ~app ~library:[| n1; n2 |]

let fig3_problem () =
  let graph = Task_graph.make ~n:1 [] in
  let app =
    Application.make ~name:"fig3" ~graph ~deadline_ms:360.0 ~gamma:1e-5
      ~recovery_overhead_ms:20.0 ()
  in
  let n1 =
    Platform.node_type ~name:"N1"
      ~versions:
        [| Platform.hversion ~level:1 ~cost:10.0 ~wcet_ms:[| 80.0 |]
             ~pfail:[| 4e-2 |];
           Platform.hversion ~level:2 ~cost:20.0 ~wcet_ms:[| 100.0 |]
             ~pfail:[| 4e-4 |];
           Platform.hversion ~level:3 ~cost:40.0 ~wcet_ms:[| 160.0 |]
             ~pfail:[| 4e-6 |] |]
  in
  Problem.make ~app ~library:[| n1 |]

(* Library indices in [fig1_problem]: N1 = 0, N2 = 1. *)

let fig4a problem =
  Design.make problem ~members:[| 0; 1 |] ~levels:[| 2; 2 |]
    ~reexecs:[| 1; 1 |] ~mapping:[| 0; 0; 1; 1 |]

let fig4b problem =
  Design.make problem ~members:[| 0 |] ~levels:[| 2 |] ~reexecs:[| 2 |]
    ~mapping:[| 0; 0; 0; 0 |]

let fig4c problem =
  Design.make problem ~members:[| 1 |] ~levels:[| 2 |] ~reexecs:[| 2 |]
    ~mapping:[| 0; 0; 0; 0 |]

let fig4d problem =
  Design.make problem ~members:[| 0 |] ~levels:[| 3 |] ~reexecs:[| 0 |]
    ~mapping:[| 0; 0; 0; 0 |]

let fig4e problem =
  Design.make problem ~members:[| 1 |] ~levels:[| 3 |] ~reexecs:[| 0 |]
    ~mapping:[| 0; 0; 0; 0 |]
