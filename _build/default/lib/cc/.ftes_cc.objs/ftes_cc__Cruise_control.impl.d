lib/cc/cruise_control.ml: Array Ftes_faultsim Ftes_model Hashtbl List
