lib/cc/fig_examples.mli: Ftes_model
