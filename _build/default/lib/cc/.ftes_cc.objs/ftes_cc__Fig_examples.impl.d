lib/cc/fig_examples.ml: Ftes_model
