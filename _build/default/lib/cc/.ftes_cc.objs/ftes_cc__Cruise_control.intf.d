lib/cc/cruise_control.mli: Ftes_model
