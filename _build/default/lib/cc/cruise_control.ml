module Task_graph = Ftes_model.Task_graph
module Application = Ftes_model.Application
module Platform = Ftes_model.Platform
module Problem = Ftes_model.Problem
module Hardening = Ftes_model.Hardening
module Fault_model = Ftes_faultsim.Fault_model

let n_processes = 32

let node_names = [| "ETM"; "ABS"; "TCM" |]

(* Functional clusters.  Home - 1.5x affinity keeps each cluster's
   processes naturally on its module; the cruise law (home = none) is
   free to move, which is where the mapping optimization earns its
   keep. *)
type cluster = Etm | Abs | Tcm | Core

let process_table =
  (* name, cluster, base WCET in ms on the home module. *)
  [| ("throttle_sensor", Etm, 14.0);
     ("pedal_filter", Etm, 16.0);
     ("throttle_pid", Etm, 18.0);
     ("throttle_limiter", Etm, 14.0);
     ("actuator_cmd", Etm, 18.0);
     ("actuator_monitor", Etm, 24.0);
     ("etm_diag", Etm, 20.0);
     ("wheel_fl", Abs, 16.0);
     ("wheel_fr", Abs, 16.0);
     ("wheel_rl", Abs, 16.0);
     ("wheel_rr", Abs, 16.0);
     ("wheel_filter", Abs, 20.0);
     ("vehicle_speed", Abs, 55.0);
     ("slip_detect", Abs, 18.0);
     ("brake_monitor", Abs, 26.0);
     ("abs_arbiter", Abs, 18.0);
     ("abs_diag", Abs, 24.0);
     ("gear_sensor", Tcm, 16.0);
     ("rpm_sensor", Tcm, 16.0);
     ("gear_state", Tcm, 20.0);
     ("shift_predict", Tcm, 22.0);
     ("torque_limit", Tcm, 18.0);
     ("tcm_diag", Tcm, 26.0);
     ("driver_buttons", Core, 10.0);
     ("target_speed", Core, 12.0);
     ("cruise_state", Core, 14.0);
     ("speed_error", Core, 12.0);
     ("pi_controller", Core, 18.0);
     ("feedforward", Core, 22.0);
     ("cmd_arbiter", Core, 14.0);
     ("safety_monitor", Core, 30.0);
     ("logger", Core, 26.0) |]

let process_names = Array.map (fun (name, _, _) -> name) process_table

let edge_table =
  (* src name, dst name, transmission ms. *)
  [ (* throttle chain *)
    ("throttle_sensor", "pedal_filter", 1.0);
    ("pedal_filter", "throttle_pid", 1.0);
    ("cmd_arbiter", "throttle_pid", 2.0);
    ("throttle_pid", "throttle_limiter", 1.0);
    ("torque_limit", "throttle_limiter", 2.0);
    ("throttle_limiter", "actuator_cmd", 1.0);
    ("actuator_cmd", "actuator_monitor", 1.0);
    ("actuator_monitor", "etm_diag", 1.0);
    (* wheel speed / braking *)
    ("wheel_fl", "wheel_filter", 1.0);
    ("wheel_fr", "wheel_filter", 1.0);
    ("wheel_rl", "wheel_filter", 1.0);
    ("wheel_rr", "wheel_filter", 1.0);
    ("wheel_filter", "vehicle_speed", 1.5);
    ("vehicle_speed", "slip_detect", 1.0);
    ("slip_detect", "abs_arbiter", 1.0);
    ("brake_monitor", "abs_arbiter", 1.0);
    ("abs_arbiter", "abs_diag", 1.0);
    (* transmission *)
    ("gear_sensor", "gear_state", 1.0);
    ("rpm_sensor", "gear_state", 1.0);
    ("vehicle_speed", "shift_predict", 2.0);
    ("gear_state", "shift_predict", 1.0);
    ("shift_predict", "torque_limit", 1.0);
    ("gear_state", "tcm_diag", 1.0);
    (* cruise law *)
    ("driver_buttons", "target_speed", 1.0);
    ("target_speed", "cruise_state", 1.0);
    ("brake_monitor", "cruise_state", 2.0);
    ("cruise_state", "speed_error", 1.0);
    ("vehicle_speed", "speed_error", 2.0);
    ("speed_error", "pi_controller", 1.0);
    ("target_speed", "feedforward", 1.0);
    ("pi_controller", "cmd_arbiter", 1.0);
    ("feedforward", "cmd_arbiter", 1.0);
    (* supervision *)
    ("cruise_state", "safety_monitor", 1.5);
    ("actuator_cmd", "safety_monitor", 2.0);
    ("safety_monitor", "logger", 1.0);
    ("abs_diag", "logger", 1.5) ]

let index_of_name =
  let table = Hashtbl.create 64 in
  Array.iteri (fun i (name, _, _) -> Hashtbl.add table name i) process_table;
  fun name ->
    match Hashtbl.find_opt table name with
    | Some i -> i
    | None -> invalid_arg ("Cruise_control: unknown process " ^ name)

let graph () =
  let edges =
    List.map
      (fun (src, dst, transmission_ms) ->
        { Task_graph.src = index_of_name src;
          dst = index_of_name dst;
          transmission_ms })
      edge_table
  in
  Task_graph.make ~n:n_processes edges

let off_home_penalty = 1.5

(* Global calibration of the (unpublished) absolute workload so that the
   paper's qualitative verdicts hold against the 300 ms deadline; see
   DESIGN.md. *)
let wcet_scale = 0.8

let home_of = function
  | Etm -> Some 0
  | Abs -> Some 1
  | Tcm -> Some 2
  | Core -> None

let base_wcet_on ~node proc =
  let _, cluster, base = process_table.(proc) in
  let base = base *. wcet_scale in
  match home_of cluster with
  | None -> base
  | Some home -> if home = node then base else base *. off_home_penalty

let levels = 5

let node_base_costs = [| 5.0; 6.0; 5.0 |]

let problem ?(deadline_ms = 300.0) ?(gamma = 1.2e-5) ?(ser_per_cycle = 2e-12)
    ?(hpd = 0.25) () =
  let app =
    Application.make ~name:"cruise-controller" ~process_names:(Array.copy process_names)
      ~graph:(graph ()) ~deadline_ms ~gamma ~recovery_overhead_ms:3.0 ()
  in
  let library =
    Array.init (Array.length node_names) (fun node ->
        let versions =
          Array.init levels (fun idx ->
              let level = idx + 1 in
              let deg = Hardening.degradation ~hpd ~level ~levels in
              let model =
                Fault_model.of_hardening ~clock_hz:1e9 ~reduction_factor:100.0
                  ~ser_per_cycle ~level ()
              in
              let wcet_ms =
                Array.init n_processes (fun proc ->
                    base_wcet_on ~node proc *. (1.0 +. deg))
              in
              let pfail =
                Array.map
                  (fun duration_ms ->
                    Fault_model.failure_probability model ~duration_ms)
                  wcet_ms
              in
              Platform.hversion ~level
                ~cost:(Hardening.linear_cost ~base:node_base_costs.(node) ~level)
                ~wcet_ms ~pfail)
        in
        Platform.node_type ~name:node_names.(node) ~versions)
  in
  Problem.make ~app ~library
