lib/sched/schedule.mli: Ftes_model
