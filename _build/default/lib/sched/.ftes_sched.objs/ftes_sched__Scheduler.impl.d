lib/sched/scheduler.ml: Array Bus Float Ftes_model List Schedule
