lib/sched/scheduler.mli: Bus Ftes_model Schedule
