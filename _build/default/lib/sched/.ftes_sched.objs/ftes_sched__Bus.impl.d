lib/sched/bus.ml: Array Float
