lib/sched/schedule.ml: Array Buffer Bytes Float Ftes_model Fun List Printf String
