lib/sched/bus.mli:
