(** Static cyclic ("root") schedules with recovery slack.

    A schedule fixes, for the fault-free case, the start time of every
    process on its node and of every inter-node message on the bus, and
    reserves {e recovery slack} so that up to [kj] re-executions on node
    [Nj] (each preceded by the recovery overhead mu) never push the
    application past its worst-case schedule length (Section 6.4). *)

type entry = {
  proc : int;
  slot : int;  (** architecture member executing the process. *)
  start : float;  (** fault-free start time, ms. *)
  finish : float;  (** fault-free completion, [start + tijh]. *)
  commit : float;
      (** time at which the process's outputs may leave the node.  Under
          the paper's shared-slack model this is [finish]; the
          conservative and dedicated policies delay it by the recovery
          slack (see {!Scheduler.slack_mode}). *)
}

type message = {
  edge : Ftes_model.Task_graph.edge;
  bus_start : float;
  bus_finish : float;
}

type t = {
  entries : entry array;  (** indexed by process. *)
  messages : message list;  (** bus traffic, in transmission order. *)
  node_finish : float array;  (** fault-free completion per member. *)
  node_worst : float array;
      (** worst-case completion per member including its recovery
          slack. *)
  length : float;  (** worst-case schedule length [SL]. *)
}

val length : t -> float

val entry : t -> proc:int -> entry

val schedulable : t -> deadline_ms:float -> bool
(** [length t <= deadline]. *)

val utilization : t -> slot:int -> float
(** Fault-free busy fraction of a member up to its nominal finish. *)

val validate :
  Ftes_model.Problem.t -> Ftes_model.Design.t -> t -> (unit, string) result
(** Structural soundness of a schedule against its design: durations
    match the WCET tables, precedence is respected (same-node successors
    after the producer's finish, cross-node successors after a bus
    message that leaves no earlier than the producer's commit), nothing
    overlaps on any node or on the bus, and the worst-case length is the
    latest node completion.  The per-mode slack contracts are asserted
    separately in the test-suite. *)

val to_gantt : Ftes_model.Problem.t -> Ftes_model.Design.t -> t -> string
(** ASCII Gantt chart (one row per node and one for the bus), in the
    style of the paper's Fig. 3 / Fig. 4. *)
