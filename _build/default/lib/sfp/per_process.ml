module Rounding = Ftes_util.Rounding
module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Application = Ftes_model.Application

let process_failure ~p ~k =
  if not (Rounding.is_probability p) || p >= 1.0 then
    invalid_arg "Per_process.process_failure: probability out of range";
  if k < 0 then invalid_arg "Per_process.process_failure: negative k";
  Rounding.clamp01 (Rounding.up (p ** float_of_int (k + 1)))

let node_failure ~probs ~k =
  if Array.length probs <> Array.length k then
    invalid_arg "Per_process.node_failure: length mismatch";
  let survive = ref 1.0 in
  Array.iteri
    (fun i p -> survive := !survive *. (1.0 -. process_failure ~p ~k:k.(i)))
    probs;
  Rounding.clamp01 (Rounding.up (1.0 -. !survive))

let system_failure_per_iteration nodes =
  let survive = ref 1.0 in
  List.iter
    (fun (probs, k) -> survive := !survive *. (1.0 -. node_failure ~probs ~k))
    nodes;
  Rounding.clamp01 (Rounding.up (1.0 -. !survive))

let meets_goal problem design ~k =
  let n = Problem.n_processes problem in
  if Array.length k <> n then
    invalid_arg "Per_process.meets_goal: budget vector length mismatch";
  let nodes =
    List.init (Design.n_members design) (fun member ->
        let procs = Design.procs_on design ~member in
        let probs =
          Array.of_list
            (List.map (fun proc -> Design.pfail problem design ~proc) procs)
        in
        let budgets = Array.of_list (List.map (fun proc -> k.(proc)) procs) in
        (probs, budgets))
  in
  let per_iteration_failure = system_failure_per_iteration nodes in
  let app = problem.Problem.app in
  Sfp.reliability ~per_iteration_failure
    ~iterations_per_hour:(Application.iterations_per_hour app)
  >= Application.reliability_goal app
