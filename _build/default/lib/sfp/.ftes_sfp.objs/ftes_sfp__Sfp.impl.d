lib/sfp/sfp.ml: Array Float Ftes_model Ftes_util
