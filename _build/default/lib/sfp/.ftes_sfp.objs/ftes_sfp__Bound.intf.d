lib/sfp/bound.mli:
