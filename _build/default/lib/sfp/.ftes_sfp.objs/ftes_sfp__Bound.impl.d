lib/sfp/bound.ml: Array Float Ftes_util
