lib/sfp/per_process.mli: Ftes_model
