lib/sfp/sfp.mli: Ftes_model
