lib/sfp/per_process.ml: Array Ftes_model Ftes_util List Sfp
