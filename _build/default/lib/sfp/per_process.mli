(** SFP analysis for {e per-process} retry budgets.

    The paper assigns one shared re-execution budget [kj] per node; the
    natural alternative gives every process its own retry budget [k_p]
    with dedicated slack.  The failure mathematics simplifies: process
    [p] fails its iteration iff all [k_p + 1] attempts fail, so a node
    survives iff every process stays within its own budget:

    {v Pr(node fails) = 1 - prod_p (1 - p_p^(k_p + 1)) v}

    (independent attempts, same directed rounding as {!Sfp}).  The
    ablation in {!Ftes_exp.Ablations} compares the two policies. *)

val process_failure : p:float -> k:int -> float
(** [p^(k+1)], rounded up.  Raises [Invalid_argument] unless [p] is in
    [\[0, 1)] and [k >= 0]. *)

val node_failure : probs:float array -> k:int array -> float
(** Per-node failure probability under per-process budgets, rounded
    up.  Raises [Invalid_argument] on a length mismatch. *)

val system_failure_per_iteration : (float array * int array) list -> float
(** Union over nodes, as in formula (5). *)

val meets_goal :
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  k:int array ->
  bool
(** Formula (6) with per-process budgets [k] (indexed by process). *)
