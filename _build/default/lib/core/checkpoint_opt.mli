(** Checkpoint-count assignment (the companion software technique of the
    paper's reference [15], "checkpointing and replication").

    With [kappa] checkpoints a process of WCET [t] pays
    [(kappa - 1) * save] extra fault-free time but re-executes only one
    segment ([t / kappa + mu]) per fault.  On a node with a shared
    budget of [k] re-executions, the worst case of a lone process is

    {v W(kappa) = t + (kappa - 1) * save + k * (t / kappa + mu) v}

    minimized near the classical [kappa* = sqrt (k * t / save)].  For a
    whole design the node slack is governed by the {e largest} segment
    on the node, so after seeding every process with its closed-form
    optimum the heuristic keeps adding checkpoints to the process with
    the largest segment while the worst-case schedule length improves. *)

val lone_worst_case :
  t:float -> save:float -> mu:float -> kappa:int -> k:int -> float
(** The W(kappa) formula above.  Raises [Invalid_argument] for
    [kappa < 1], negative overheads or negative [k]. *)

val optimal_checkpoints :
  ?kappa_max:int -> t:float -> save:float -> k:int -> unit -> int
(** Exact minimizer of {!lone_worst_case} over [1 .. kappa_max]
    (default 20; [mu] does not influence the optimum).  [save = 0]
    returns [kappa_max] capped; [k = 0] returns 1. *)

val optimize :
  ?save_ms:float ->
  ?kappa_max:int ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  int array * float
(** [optimize problem design] chooses checkpoint counts for every
    process of a design whose re-execution budgets are already fixed,
    and returns them with the resulting worst-case schedule length under
    {!Ftes_sched.Scheduler.Checkpointed}.  Default save overhead: half
    the recovery overhead [mu]. *)
