module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Scheduler = Ftes_sched.Scheduler

let lone_worst_case ~t ~save ~mu ~kappa ~k =
  if kappa < 1 then invalid_arg "Checkpoint_opt: kappa must be >= 1";
  if t < 0.0 || save < 0.0 || mu < 0.0 then
    invalid_arg "Checkpoint_opt: negative time";
  if k < 0 then invalid_arg "Checkpoint_opt: negative k";
  let segments = float_of_int kappa in
  t +. ((segments -. 1.0) *. save)
  +. (float_of_int k *. ((t /. segments) +. mu))

let optimal_checkpoints ?(kappa_max = 20) ~t ~save ~k () =
  if kappa_max < 1 then invalid_arg "Checkpoint_opt: kappa_max must be >= 1";
  if k = 0 then 1
  else begin
    (* W is convex in kappa; an exact scan over the small range is
       simpler than rounding the continuous optimum both ways. *)
    let best = ref 1 in
    for kappa = 2 to kappa_max do
      if
        lone_worst_case ~t ~save ~mu:0.0 ~kappa ~k
        < lone_worst_case ~t ~save ~mu:0.0 ~kappa:!best ~k -. 1e-12
      then best := kappa
    done;
    !best
  end

let optimize ?save_ms ?(kappa_max = 20) problem design =
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let save = Option.value ~default:(mu /. 2.0) save_ms in
  let n = Problem.n_processes problem in
  (* Start from no checkpointing (exactly the plain schedule) and only
     grow: the closed-form per-process optimum over-spends saves on a
     node whose slack is governed by the largest segment alone, so it is
     a poor seed for the coupled problem. *)
  let kappa = Array.make n 1 in
  let sl kappa =
    Scheduler.schedule_length
      ~slack:(Scheduler.Checkpointed { kappa; save_ms = save })
      problem design
  in
  (* The node slack charges the largest segment on the node: keep
     splitting that segment further while the schedule improves. *)
  let rec refine current =
    let candidate = Array.copy kappa in
    let improved = ref None in
    for proc = 0 to n - 1 do
      if kappa.(proc) < kappa_max then begin
        candidate.(proc) <- kappa.(proc) + 1;
        let v = sl candidate in
        (match !improved with
        | Some (_, best) when best <= v -> ()
        | Some _ | None -> if v < current -. 1e-9 then improved := Some (proc, v));
        candidate.(proc) <- kappa.(proc)
      end
    done;
    match !improved with
    | Some (proc, v) ->
        kappa.(proc) <- kappa.(proc) + 1;
        refine v
    | None -> current
  in
  let final = refine (sl kappa) in
  (kappa, final)
