(** Per-process retry assignment — the alternative software-redundancy
    policy to the paper's shared per-node budgets.

    Every process receives its own retry budget [k_p], paid for with
    dedicated schedule slack [k_p * (tijh + mu)] right after the process
    (the {!Ftes_sched.Scheduler.Per_process} slack policy).  Budgets are
    grown greedily, spending the next retry where it buys the most
    system reliability {e per millisecond of added slack} — the
    cost-aware analogue of {!Re_execution_opt}'s rule.

    The ablation in {!Ftes_exp.Ablations} uses this to quantify what the
    paper's slack sharing is worth against the best per-process
    alternative (rather than against a uniform dedicated budget). *)

val for_mapping :
  ?kmax:int ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  int array option
(** [for_mapping problem design] returns the per-process budget vector
    meeting the reliability goal, or [None] if the goal is unreachable
    within [kmax] (default {!Ftes_sfp.Sfp.default_kmax}) retries per
    process.  The design's own [reexecs] field is ignored. *)

val schedule_length :
  Ftes_model.Problem.t -> Ftes_model.Design.t -> k:int array -> float
(** Worst-case schedule length under the per-process policy. *)

val optimize :
  ?kmax:int ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  (int array * float) option
(** Budgets plus the resulting schedule length, when the goal is
    reachable. *)
