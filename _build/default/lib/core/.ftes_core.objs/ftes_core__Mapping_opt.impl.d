lib/core/mapping_opt.ml: Array Config Float Ftes_model Fun List Redundancy_opt
