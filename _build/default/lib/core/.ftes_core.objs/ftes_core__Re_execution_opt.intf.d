lib/core/re_execution_opt.mli: Ftes_model
