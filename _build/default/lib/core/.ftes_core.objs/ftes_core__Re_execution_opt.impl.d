lib/core/re_execution_opt.ml: Array Ftes_model Ftes_sfp Option
