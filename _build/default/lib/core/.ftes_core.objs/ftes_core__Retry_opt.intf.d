lib/core/retry_opt.mli: Ftes_model
