lib/core/config.ml: Ftes_sched
