lib/core/design_strategy.mli: Config Ftes_model Ftes_sched Ftes_sfp Redundancy_opt
