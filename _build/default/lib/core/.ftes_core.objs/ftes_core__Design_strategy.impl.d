lib/core/design_strategy.ml: Array Config Ftes_model Ftes_sched Ftes_sfp List Mapping_opt Option Redundancy_opt
