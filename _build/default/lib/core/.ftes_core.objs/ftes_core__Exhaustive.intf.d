lib/core/exhaustive.mli: Config Ftes_model Redundancy_opt
