lib/core/mapping_opt.mli: Config Ftes_model Redundancy_opt
