lib/core/retry_opt.ml: Array Ftes_model Ftes_sched Ftes_sfp List
