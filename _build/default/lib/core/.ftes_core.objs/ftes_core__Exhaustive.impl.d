lib/core/exhaustive.ml: Array Config Float Ftes_model Ftes_sched List Printf Re_execution_opt Redundancy_opt
