lib/core/config.mli: Ftes_sched
