lib/core/redundancy_opt.ml: Array Config Float Ftes_model Ftes_sched Re_execution_opt
