lib/core/redundancy_opt.mli: Config Ftes_model
