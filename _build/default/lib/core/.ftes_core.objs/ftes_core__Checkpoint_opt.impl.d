lib/core/checkpoint_opt.ml: Array Ftes_model Ftes_sched Option
