lib/core/checkpoint_opt.mli: Ftes_model
