module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Sfp = Ftes_sfp.Sfp
module Per_process = Ftes_sfp.Per_process
module Scheduler = Ftes_sched.Scheduler

let reliability_of problem design ~k =
  let nodes =
    List.init (Design.n_members design) (fun member ->
        let procs = Design.procs_on design ~member in
        let probs =
          Array.of_list
            (List.map (fun proc -> Design.pfail problem design ~proc) procs)
        in
        let budgets = Array.of_list (List.map (fun proc -> k.(proc)) procs) in
        (probs, budgets))
  in
  let per_iteration_failure = Per_process.system_failure_per_iteration nodes in
  Sfp.reliability ~per_iteration_failure
    ~iterations_per_hour:
      (Application.iterations_per_hour problem.Problem.app)

let for_mapping ?(kmax = Sfp.default_kmax) problem design =
  let n = Problem.n_processes problem in
  let goal = Application.reliability_goal problem.Problem.app in
  let mu = problem.Problem.app.Application.recovery_overhead_ms in
  let k = Array.make n 0 in
  let rec grow current =
    if current >= goal then Some (Array.copy k)
    else begin
      (* Candidate: +1 retry on each process; rank by reliability gain
         per millisecond of dedicated slack added. *)
      let best = ref None in
      for p = 0 to n - 1 do
        if k.(p) < kmax then begin
          k.(p) <- k.(p) + 1;
          let r = reliability_of problem design ~k in
          k.(p) <- k.(p) - 1;
          let slack_cost = Design.wcet problem design ~proc:p +. mu in
          let score = (r -. current) /. slack_cost in
          match !best with
          | Some (_, bs, _) when bs >= score -> ()
          | Some _ | None -> best := Some (p, score, r)
        end
      done;
      match !best with
      | Some (p, _, r) when r > current ->
          k.(p) <- k.(p) + 1;
          grow r
      | Some _ | None -> None
    end
  in
  grow (reliability_of problem design ~k)

let schedule_length problem design ~k =
  Scheduler.schedule_length ~slack:(Scheduler.Per_process k) problem design

let optimize ?kmax problem design =
  match for_mapping ?kmax problem design with
  | None -> None
  | Some k -> Some (k, schedule_length problem design ~k)
