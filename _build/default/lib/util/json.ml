type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

(* --- rendering --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(minify = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if not minify then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if not minify then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number x -> Buffer.add_string buf (number_to_string x)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        pad depth;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, value) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            escape_string buf key;
            Buffer.add_string buf (if minify then ":" else ": ");
            emit (depth + 1) value)
          fields;
        newline ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected %c, found %c" c d)
    | None -> error (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub input !pos len = word then begin
      pos := !pos + len;
      value
    end
    else error ("invalid literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> error "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > n then error "truncated \\u escape";
                  let hex = String.sub input !pos 4 in
                  pos := !pos + 4;
                  let code =
                    match int_of_string_opt ("0x" ^ hex) with
                    | Some c -> c
                    | None -> error "invalid \\u escape"
                  in
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else error "non-ASCII \\u escapes are not supported"
              | _ -> error "invalid escape character");
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec eat () =
      match peek () with
      | Some c when is_number_char c ->
          advance ();
          eat ()
      | Some _ | None -> ()
    in
    eat ();
    let text = String.sub input start (!pos - start) in
    match float_of_string_opt text with
    | Some x -> x
    | None -> error ("invalid number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | Some c -> error (Printf.sprintf "expected , or ] in list, found %c" c)
            | None -> error "unterminated list"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Object []
        end
        else begin
          let parse_field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            (key, value)
          in
          let rec fields acc =
            let f = parse_field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | Some c -> error (Printf.sprintf "expected , or } in object, found %c" c)
            | None -> error "unterminated object"
          in
          Object (fields [])
        end
    | Some ('-' | '0' .. '9') -> Number (parse_number ())
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then error "trailing characters after the document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* --- accessors --- *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Number _ -> "number"
  | String _ -> "string"
  | List _ -> "list"
  | Object _ -> "object"

let member key = function
  | Object fields -> (
      match List.assoc_opt key fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" key))
  | other -> Error (Printf.sprintf "expected an object with field %S, got %s" key (type_name other))

let to_float = function
  | Number x -> Ok x
  | other -> Error ("expected a number, got " ^ type_name other)

let to_int = function
  | Number x when Float.is_integer x -> Ok (int_of_float x)
  | Number _ -> Error "expected an integer"
  | other -> Error ("expected an integer, got " ^ type_name other)

let to_bool = function
  | Bool b -> Ok b
  | other -> Error ("expected a bool, got " ^ type_name other)

let to_list = function
  | List items -> Ok items
  | other -> Error ("expected a list, got " ^ type_name other)

let to_string_value = function
  | String s -> Ok s
  | other -> Error ("expected a string, got " ^ type_name other)

let ( let* ) = Result.bind

let float_array t =
  let* items = to_list t in
  let rec gather acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | x :: rest ->
        let* v = to_float x in
        gather (v :: acc) rest
  in
  gather [] items
