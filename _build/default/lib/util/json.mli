(** Minimal JSON reader/writer.

    Problem instances are exchanged as JSON files (see
    {!Ftes_model.Problem_io}); the sealed environment has no JSON
    package, so this is a small self-contained implementation: UTF-8
    strings with the standard escapes, numbers as OCaml floats, no
    surrogate-pair handling beyond pass-through of [\uXXXX] below
    0x80 (escape sequences above that are rejected — the project's data
    files are ASCII). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; two-space indentation unless [minify]. *)

val of_string : string -> (t, string) result
(** Parse a complete document; trailing garbage is an error.  Errors
    carry a character offset. *)

(** {1 Accessors} — all return [Error] with a path-aware message rather
    than raising. *)

val member : string -> t -> (t, string) result
(** Field of an object. *)

val to_float : t -> (float, string) result
val to_int : t -> (int, string) result
val to_bool : t -> (bool, string) result
val to_list : t -> (t list, string) result
val to_string_value : t -> (string, string) result

val float_array : t -> (float array, string) result
(** A JSON list of numbers. *)

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** Result bind, re-exported for parser-style client code. *)
