(** Deterministic splittable pseudo-random number generator.

    The generator is a splitmix64 stream.  Every experiment in the
    benchmark harness derives its own generator from a fixed root seed,
    so all synthetic workloads and all reported numbers are exactly
    reproducible from run to run and machine to machine.  The standard
    library [Random] is deliberately not used anywhere in the project. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the continuation of [t].  Used to
    give every application / experiment cell its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).  Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples Exp(lambda); used by the fault
    injector for inter-arrival times. *)
