let grain = 1e-11

let inv_grain = 1e11

(* Binary float arithmetic introduces absolute errors around 1e-16 per
   operation on quantities of order one; scaled by 1e11 that is ~1e-5
   grain units.  The paper's rounding is decimal, so a value sitting
   exactly on a grain boundary must not be pushed to the neighbouring
   grain by such noise — but the slop must stay small enough that a
   genuinely positive sub-grain probability still rounds *up* to one
   grain (pessimism).  1e-4 grain units covers the noise with two orders
   of margin while remaining 1e-15 in absolute terms. *)
let slop = 1e-4

let down x = Float.of_int (int_of_float (Float.floor ((x *. inv_grain) +. slop))) *. grain

let up x = Float.of_int (int_of_float (Float.ceil ((x *. inv_grain) -. slop))) *. grain

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let is_probability x = Float.is_finite x && x >= 0.0 && x <= 1.0
