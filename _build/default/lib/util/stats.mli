(** Small statistics helpers for the experiment harness. *)

type running
(** Single-pass accumulator (Welford) for mean / variance / extrema. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_variance : running -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val running_stddev : running -> float
val running_min : running -> float
val running_max : running -> float

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs q] with [q] in [\[0,1\]], linear interpolation between
    order statistics.  Raises [Invalid_argument] on the empty list. *)

val binomial_confidence : successes:int -> trials:int -> float * float
(** 95% Wilson score interval for a proportion; used to attach error
    bars to Monte-Carlo failure-probability estimates. *)
