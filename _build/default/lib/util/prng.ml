(* Splitmix64 (Steele, Lea & Flood 2014).  Small state, good statistical
   quality for simulation purposes, and trivially splittable, which is
   what the experiment harness needs. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

(* Non-negative 62-bit integer from the top bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod n in
    if r - v > max_int - n + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits scaled to [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. x

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. lambda
