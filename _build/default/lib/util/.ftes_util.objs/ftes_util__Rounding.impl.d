lib/util/rounding.ml: Float
