lib/util/ascii_chart.ml: Array Buffer Float List Printf String
