lib/util/ascii_chart.mli:
