lib/util/prng.mli:
