lib/util/stats.mli:
