lib/util/csv.mli:
