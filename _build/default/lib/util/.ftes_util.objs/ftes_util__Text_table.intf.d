lib/util/text_table.mli:
