lib/util/rounding.mli:
