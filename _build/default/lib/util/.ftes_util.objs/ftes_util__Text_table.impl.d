lib/util/text_table.ml: Array Buffer List Printf String
