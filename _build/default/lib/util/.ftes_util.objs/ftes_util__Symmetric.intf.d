lib/util/symmetric.mli:
