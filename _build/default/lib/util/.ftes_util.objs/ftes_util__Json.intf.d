lib/util/json.mli:
