lib/util/json.ml: Array Buffer Char Float List Printf Result String
