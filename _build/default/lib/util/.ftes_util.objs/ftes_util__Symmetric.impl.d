lib/util/symmetric.ml: Array Float
