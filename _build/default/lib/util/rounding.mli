(** Directed ("pessimistic") rounding of probabilities.

    Appendix A of the paper rounds every intermediate probability at a
    grain of 10^-11: success probabilities are rounded {e down} and
    failure probabilities {e up}, so that the computed system failure
    probability is never optimistic.  This module centralizes that
    contract. *)

val grain : float
(** The rounding grain, 1e-11. *)

val down : float -> float
(** [down x] is the largest multiple of {!grain} not exceeding [x].
    Used for success probabilities (e.g. Pr(0; Njh)). *)

val up : float -> float
(** [up x] is the smallest multiple of {!grain} not below [x].  Used for
    failure probabilities (e.g. Pr(f > kj; Njh)). *)

val clamp01 : float -> float
(** Clamp to the closed unit interval; guards against the -1e-22-style
    negatives produced by float cancellation. *)

val is_probability : float -> bool
(** [is_probability x] is [true] iff [0. <= x <= 1.] and [x] is finite. *)
