type align = Left | Right | Center

type line = Row of string list | Separator

type t = {
  headers : string list;
  columns : int;
  mutable aligns : align array;
  mutable lines : line list; (* reversed *)
}

let create ~headers =
  let columns = List.length headers in
  { headers; columns; aligns = Array.make columns Left; lines = [] }

let set_aligns t aligns =
  List.iteri (fun i a -> if i < t.columns then t.aligns.(i) <- a) aligns

let add_row t cells =
  let n = List.length cells in
  if n > t.columns then invalid_arg "Text_table.add_row: too many cells";
  let padded = cells @ List.init (t.columns - n) (fun _ -> "") in
  t.lines <- Row padded :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - len) ' '
    | Right -> String.make (width - len) ' ' ^ s
    | Center ->
        let left = (width - len) / 2 in
        String.make left ' ' ^ s ^ String.make (width - len - left) ' '

let render t =
  let lines = List.rev t.lines in
  let widths = Array.make t.columns 0 in
  let measure cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure t.headers;
  List.iter (function Row cells -> measure cells | Separator -> ()) lines;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  emit_row t.headers;
  rule ();
  List.iter (function Row cells -> emit_row cells | Separator -> rule ()) lines;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct x = Printf.sprintf "%.1f" (100.0 *. x)
