(** Minimal CSV writer for exporting experiment data series.

    Only writing is needed: the harness dumps every reproduced table and
    figure as CSV next to the textual report so that plots can be drawn
    offline.  Fields containing commas, quotes or newlines are quoted
    per RFC 4180. *)

val escape_field : string -> string
(** Quote a single field if needed. *)

val row_to_string : string list -> string
(** One CSV line, without the trailing newline. *)

val to_string : string list list -> string
(** Full document with ["\n"] line termination. *)

val write_file : string -> string list list -> unit
(** [write_file path rows] writes (or overwrites) [path]. *)
