(** Sums over multisets of failure probabilities.

    Formula (3) of the paper sums, over every combination with
    repetitions of [f] faults among the processes mapped on a node, the
    product of the selected processes' failure probabilities.  That sum
    is exactly the complete homogeneous symmetric polynomial h_f of the
    probability vector.  This module provides an O(n·k) dynamic program
    for h_0 .. h_k, plus an explicit multiset enumerator used to
    cross-check the DP in tests. *)

val complete_homogeneous : float array -> int -> float array
(** [complete_homogeneous p k] is [[| h_0 p; h_1 p; ...; h_k p |]] where
    [h_f p] is the sum over all multisets of size [f] drawn from the
    entries of [p] of the product of the selected entries (an entry may
    be selected several times).  [h_0 = 1.]  Raises [Invalid_argument]
    on negative [k]. *)

val fold_multisets : n:int -> f:int -> init:'a -> ('a -> int array -> 'a) -> 'a
(** [fold_multisets ~n ~f ~init step] folds [step] over every
    multiplicity vector [m] of length [n] with [sum m = f] (every
    f-fault scenario over [n] processes).  The array passed to [step] is
    reused; callers must not retain it. *)

val count_multisets : n:int -> f:int -> int
(** Number of multisets of size [f] over [n] elements,
    C(n + f - 1, f).  Raises [Invalid_argument] if the count overflows
    the native integer range. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n, k); 0 when [k < 0] or [k > n].  Raises
    [Invalid_argument] on overflow. *)

val log_factorial : int -> float
(** Natural log of n!, by Lgamma; used by statistics helpers. *)
