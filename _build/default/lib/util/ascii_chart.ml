type series = { label : string; values : float list }

let bar_chart ?(width = 50) ~title ~x_labels series =
  List.iter
    (fun s ->
      if List.length s.values <> List.length x_labels then
        invalid_arg "Ascii_chart.bar_chart: series length mismatch")
    series;
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let label_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 0 series
  in
  let x_width =
    List.fold_left (fun acc x -> max acc (String.length x)) 0 x_labels
  in
  let bar v =
    let v = Float.max 0.0 (Float.min 100.0 v) in
    let n = int_of_float (Float.round (v /. 100.0 *. float_of_int width)) in
    String.make n '#'
  in
  List.iteri
    (fun i x ->
      List.iter
        (fun s ->
          let v = List.nth s.values i in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %-*s |%-*s| %5.1f\n" x_width
               (if s == List.hd series then x else "")
               label_width s.label width (bar v) v))
        series;
      if i < List.length x_labels - 1 then Buffer.add_char buf '\n')
    x_labels;
  Buffer.contents buf

let sparkline values =
  match values with
  | [] -> ""
  | values ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let levels = [| '_'; '.'; '-'; '~'; '^' |] in
      let pick v =
        if hi -. lo < 1e-12 then levels.(2)
        else begin
          let idx =
            int_of_float ((v -. lo) /. (hi -. lo) *. 4.0 +. 0.5)
          in
          levels.(max 0 (min 4 idx))
        end
      in
      String.init (List.length values) (fun i -> pick (List.nth values i))
