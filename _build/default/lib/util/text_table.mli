(** Plain-text tables for the experiment reports.

    The benchmark harness prints every reproduced paper table with this
    renderer so that [bench_output.txt] is self-describing. *)

type align = Left | Right | Center

type t

val create : headers:string list -> t
(** A new table with one column per header (left-aligned by default). *)

val set_aligns : t -> align list -> unit
(** Per-column alignment; shorter lists leave trailing columns as-is. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** Render with box-drawing in plain ASCII. *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point cell formatting helper (default 2 decimals). *)

val cell_pct : float -> string
(** Percentage cell: [cell_pct 0.84] is ["84.0"]. *)
