type running = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let running_create () =
  { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let running_add r x =
  r.count <- r.count + 1;
  let delta = x -. r.mean in
  r.mean <- r.mean +. (delta /. float_of_int r.count);
  r.m2 <- r.m2 +. (delta *. (x -. r.mean));
  if x < r.min then r.min <- x;
  if x > r.max then r.max <- x

let running_count r = r.count
let running_mean r = r.mean

let running_variance r =
  if r.count < 2 then 0.0 else r.m2 /. float_of_int (r.count - 1)

let running_stddev r = sqrt (running_variance r)
let running_min r = r.min
let running_max r = r.max

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs q =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = int_of_float (Float.ceil pos) in
      if lo = hi then a.(lo)
      else begin
        let w = pos -. float_of_int lo in
        (a.(lo) *. (1.0 -. w)) +. (a.(hi) *. w)
      end

let binomial_confidence ~successes ~trials =
  if trials <= 0 then (0.0, 1.0)
  else begin
    let z = 1.959963984540054 in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end
