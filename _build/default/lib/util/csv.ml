let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string row = String.concat "," (List.map escape_field row)

let to_string rows =
  String.concat "" (List.map (fun r -> row_to_string r ^ "\n") rows)

let write_file path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string rows))
