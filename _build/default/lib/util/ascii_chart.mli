(** Tiny ASCII charts used to render the paper's figures in text form.

    Every figure of the evaluation section (Fig. 6a, 6c, 6d) is a small
    grouped series of percentages over 3-4 x positions, so grouped bar
    charts are the natural text rendering. *)

type series = { label : string; values : float list }

val bar_chart :
  ?width:int -> title:string -> x_labels:string list -> series list -> string
(** [bar_chart ~title ~x_labels series] renders one horizontal bar per
    (x, series) pair, scaled to [width] characters (default 50) for the
    value 100.  All series must have [List.length x_labels] values;
    raises [Invalid_argument] otherwise. *)

val sparkline : float list -> string
(** One-line sketch of a numeric series using block characters
    (["_.-~^"] levels in pure ASCII). *)
