let complete_homogeneous p k =
  if k < 0 then invalid_arg "Symmetric.complete_homogeneous: negative degree";
  let h = Array.make (k + 1) 0.0 in
  h.(0) <- 1.0;
  (* Incorporate one variable at a time:
     with variables p_1..p_j,  h_f = h_f(without p_j) + p_j * h_{f-1}(with p_j).
     Processing f in increasing order realizes both terms in place. *)
  Array.iter
    (fun pj ->
      for f = 1 to k do
        h.(f) <- h.(f) +. (pj *. h.(f - 1))
      done)
    p;
  h

let fold_multisets ~n ~f ~init step =
  if n < 0 || f < 0 then invalid_arg "Symmetric.fold_multisets: negative size";
  if n = 0 then (if f = 0 then step init [||] else init)
  else begin
    let m = Array.make n 0 in
    (* Enumerate multiplicity vectors recursively: position [i] receives
       between 0 and [remaining] faults; the last position takes the rest. *)
    let rec go acc i remaining =
      if i = n - 1 then begin
        m.(i) <- remaining;
        step acc m
      end
      else begin
        let acc = ref acc in
        for c = 0 to remaining do
          m.(i) <- c;
          acc := go !acc (i + 1) (remaining - c)
        done;
        m.(i) <- 0;
        !acc
      end
    in
    go init 0 f
  end

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec loop acc i =
      if i > k then acc
      else begin
        let num = n - k + i in
        if acc > max_int / num then
          invalid_arg "Symmetric.binomial: overflow"
        else loop (acc * num / i) (i + 1)
      end
    in
    loop 1 1
  end

let count_multisets ~n ~f =
  if n < 0 || f < 0 then invalid_arg "Symmetric.count_multisets: negative size";
  if n = 0 then (if f = 0 then 1 else 0)
  else binomial (n + f - 1) f

(* Stirling-series approximation of ln Gamma(x), accurate to ~1e-10 for
   x >= 8; smaller arguments are lifted by the recurrence
   lgamma x = lgamma (x+1) - ln x. *)
let rec lgamma x =
  if x < 8.0 then lgamma (x +. 1.0) -. log x
  else
    let inv = 1.0 /. x in
    let inv2 = inv *. inv in
    let series =
      inv
      *. (1.0 /. 12.0
         +. (inv2 *. (-1.0 /. 360.0 +. (inv2 *. (1.0 /. 1260.0 +. (inv2 *. -1.0 /. 1680.0))))))
    in
    ((x -. 0.5) *. log x) -. x +. (0.5 *. log (2.0 *. Float.pi)) +. series

let log_factorial n =
  if n < 0 then invalid_arg "Symmetric.log_factorial: negative argument";
  if n <= 1 then 0.0 else lgamma (float_of_int n +. 1.0)
