(** Platform-table synthesis.

    Expands a compact node description (speed factor, base cost, number
    of h-versions) into the full per-process WCET / failure-probability
    tables of {!Ftes_model.Platform}, using the degradation schedule of
    {!Ftes_model.Hardening} and the transient-fault model of
    {!Ftes_faultsim.Fault_model}. *)

type tech = {
  ser_per_cycle : float;
      (** average soft error rate at the minimum hardening level. *)
  reduction_factor : float;  (** SER division per hardening level. *)
  clock_hz : float;
}

val tech :
  ?reduction_factor:float -> ?clock_hz:float -> ser_per_cycle:float -> unit -> tech
(** Defaults: reduction 100 per level, 100 MHz clock. *)

type node_spec = {
  name : string;
  base_cost : float;  (** cost of the minimum-hardening version. *)
  speed : float;  (** WCET multiplier of this node (1.0 = fastest). *)
  levels : int;  (** number of h-versions. *)
}

val node_type :
  tech:tech ->
  hpd:float ->
  ?cost_of:(base:float -> level:int -> float) ->
  base_wcets_ms:float array ->
  node_spec ->
  Ftes_model.Platform.node_type
(** [node_type ~tech ~hpd ~base_wcets_ms spec] builds the h-version
    table: WCET of process [i] at level [h] is
    [base.(i) * spec.speed * (1 + degradation h)], its failure
    probability is the closed-form strike probability over that duration
    with the level's masking, and costs follow [cost_of] (default
    {!Ftes_model.Hardening.linear_cost}). *)
