module Prng = Ftes_util.Prng
module Task_graph = Ftes_model.Task_graph

type params = {
  n : int;
  width : int;
  extra_edge_probability : float;
  transmission_ms_range : float * float;
}

let default_params ~n =
  { n;
    width = max 2 (n / 5);
    extra_edge_probability = 0.15;
    transmission_ms_range = (0.5, 2.0) }

let generate prng params =
  let { n; width; extra_edge_probability; transmission_ms_range = lo, hi } =
    params
  in
  if n <= 0 then invalid_arg "Dag_gen.generate: n must be positive";
  if width <= 0 then invalid_arg "Dag_gen.generate: width must be positive";
  if hi < lo || lo < 0.0 then
    invalid_arg "Dag_gen.generate: bad transmission range";
  let transmission () = Prng.float_in prng lo hi in
  (* Assign processes to layers. *)
  let layer = Array.make n 0 in
  let current = ref 0 and filled = ref 0 in
  for p = 0 to n - 1 do
    layer.(p) <- !current;
    incr filled;
    let target = 1 + Prng.int prng width in
    if !filled >= target then begin
      incr current;
      filled := 0
    end
  done;
  let edges = ref [] in
  let have = Hashtbl.create 64 in
  let out_degree = Array.make n 0 in
  let add src dst =
    if not (Hashtbl.mem have (src, dst)) then begin
      Hashtbl.add have (src, dst) ();
      out_degree.(src) <- out_degree.(src) + 1;
      edges :=
        { Task_graph.src; dst; transmission_ms = transmission () } :: !edges
    end
  in
  (* Every process beyond the first layer gets a parent from the
     immediately preceding layers, keeping the graph mostly connected. *)
  for p = 0 to n - 1 do
    if layer.(p) > 0 then begin
      let parents =
        List.filter (fun q -> layer.(q) < layer.(p)) (List.init n Fun.id)
      in
      let close =
        List.filter (fun q -> layer.(q) = layer.(p) - 1) parents
      in
      let pool = if close <> [] then close else parents in
      add (Prng.choice prng (Array.of_list pool)) p
    end
  done;
  (* Sprinkle extra forward edges, with a per-process cap so the
     expected degree stays small like TGFF's defaults. *)
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      let gap = layer.(q) - layer.(p) in
      if
        gap > 0 && out_degree.(p) < 4
        && Prng.chance prng (extra_edge_probability /. float_of_int gap)
      then add p q
    done
  done;
  Task_graph.make ~n (List.rev !edges)
