lib/gen/platform_gen.mli: Ftes_model
