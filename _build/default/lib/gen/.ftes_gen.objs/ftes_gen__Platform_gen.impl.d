lib/gen/platform_gen.ml: Array Ftes_faultsim Ftes_model
