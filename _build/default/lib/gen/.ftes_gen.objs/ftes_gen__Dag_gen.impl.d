lib/gen/dag_gen.ml: Array Ftes_model Ftes_util Fun Hashtbl List
