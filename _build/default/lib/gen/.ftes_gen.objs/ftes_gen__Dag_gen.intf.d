lib/gen/dag_gen.mli: Ftes_model Ftes_util
