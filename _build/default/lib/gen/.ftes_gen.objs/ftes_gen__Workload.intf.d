lib/gen/workload.mli: Ftes_model Platform_gen
