lib/gen/workload.ml: Array Dag_gen Float Ftes_core Ftes_model Ftes_sched Ftes_util Fun List Platform_gen Printf
