(** TGFF-style random task-graph generation.

    The synthetic applications of Section 7 are acyclic process graphs
    of 20 or 40 processes.  We use the classic layer-by-layer recipe:
    processes are spread over layers, every non-first-layer process
    receives at least one predecessor from an earlier layer, and extra
    forward edges are added with a given probability.  All randomness
    comes from the supplied generator, so graphs are reproducible. *)

type params = {
  n : int;  (** number of processes. *)
  width : int;  (** target processes per layer (>= 1). *)
  extra_edge_probability : float;
      (** chance of each potential additional forward edge, scaled so the
          expected edge count stays linear in [n]. *)
  transmission_ms_range : float * float;
      (** worst-case bus transmission time of each produced message. *)
}

val default_params : n:int -> params
(** Width [max 2 (n/5)], extra edge probability [0.15], transmission
    times in [\[0.5, 2.0\]] ms. *)

val generate : Ftes_util.Prng.t -> params -> Ftes_model.Task_graph.t
(** Raises [Invalid_argument] on non-positive [n] or [width], or an
    empty transmission range. *)
