module Platform = Ftes_model.Platform
module Hardening = Ftes_model.Hardening
module Fault_model = Ftes_faultsim.Fault_model

type tech = {
  ser_per_cycle : float;
  reduction_factor : float;
  clock_hz : float;
}

let tech ?(reduction_factor = 100.0) ?(clock_hz = Fault_model.default_clock_hz)
    ~ser_per_cycle () =
  if ser_per_cycle < 0.0 then invalid_arg "Platform_gen.tech: negative SER";
  { ser_per_cycle; reduction_factor; clock_hz }

type node_spec = {
  name : string;
  base_cost : float;
  speed : float;
  levels : int;
}

let node_type ~tech ~hpd ?(cost_of = fun ~base ~level ->
    Hardening.linear_cost ~base ~level) ~base_wcets_ms spec =
  if spec.levels < 1 then invalid_arg "Platform_gen.node_type: no levels";
  if spec.speed <= 0.0 then invalid_arg "Platform_gen.node_type: bad speed";
  let versions =
    Array.init spec.levels (fun idx ->
        let level = idx + 1 in
        let model =
          Fault_model.of_hardening ~clock_hz:tech.clock_hz
            ~reduction_factor:tech.reduction_factor
            ~ser_per_cycle:tech.ser_per_cycle ~level ()
        in
        let deg = Hardening.degradation ~hpd ~level ~levels:spec.levels in
        let wcet_ms =
          Array.map (fun base -> base *. spec.speed *. (1.0 +. deg)) base_wcets_ms
        in
        let pfail =
          Array.map
            (fun duration_ms -> Fault_model.failure_probability model ~duration_ms)
            wcet_ms
        in
        Platform.hversion ~level
          ~cost:(cost_of ~base:spec.base_cost ~level)
          ~wcet_ms ~pfail)
  in
  Platform.node_type ~name:spec.name ~versions
